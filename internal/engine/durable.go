// Crash-safe persistence. A durable database directory holds immutable
// snapshot generations plus a statement write-ahead log:
//
//	CURRENT          "snap-NNNNNN\n" — the committed generation
//	snap-NNNNNN/     one snapshot: schema.authdb, views.authdb,
//	                 data/REL.csv, an LSN file recording the log
//	                 sequence number the snapshot embodies, and a
//	                 MANIFEST with the CRC-32 and size of every file
//	wal-NNNNNN.log   statements applied after snap-NNNNNN was taken
//
// A checkpoint builds the next generation in a temp directory, fsyncs
// everything, renames it into place, creates the generation's empty WAL,
// and then — the commit point — atomically renames a new CURRENT over
// the old one. A crash anywhere leaves either the old generation fully
// committed or the new one; partially built directories are ignored and
// reclaimed by the next checkpoint.
//
// Every mutating statement is journaled to the WAL (rendered back to
// canonical statement text) inside the same critical section that
// applies it, so the log order equals the apply order. Opening replays
// the committed snapshot plus the longest valid prefix of its WAL —
// tolerating a torn or corrupt tail — and immediately checkpoints, so a
// recovered engine never appends after a torn tail.
package engine

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"

	"authdb/internal/core"
	"authdb/internal/faultfs"
	"authdb/internal/storage"
	"authdb/internal/wal"
)

const (
	currentName  = "CURRENT"
	manifestName = "MANIFEST"
)

func snapName(gen uint64) string { return fmt.Sprintf("snap-%06d", gen) }
func walName(gen uint64) string  { return fmt.Sprintf("wal-%06d.log", gen) }

// lsnName is the snapshot file recording the LSN the snapshot embodies;
// recovery continues numbering from it (see commit.go for LSN
// semantics). It lives only inside snapshot generations, never in the
// flat Save layout.
const lsnName = "LSN"

// durable is an engine's attachment to a durable database directory.
// The open WAL handle lives on the Engine (walH, under walMu) so the
// group-commit flusher can append without the engine lock; the
// fail-stop error lives on the Engine too (brokenErr, under commitMu).
type durable struct {
	fs  faultfs.FS
	dir string
	gen uint64
}

// OpenDurable opens (creating if necessary) a durable database
// directory: the committed snapshot is loaded, the write-ahead log's
// valid prefix is replayed, and a fresh checkpoint is taken. Directories
// saved with Save (the flat layout) are converted on first open. The
// storage backend comes from the environment (AUTHDB_STORAGE, see
// StorageConfigFromEnv); use OpenDurableStorage to pick it explicitly.
// The caller should Close the engine to release the log handle.
func OpenDurable(dir string, opt core.Options) (*Engine, error) {
	return OpenDurableFS(faultfs.OS(), dir, opt)
}

// OpenDurableFS is OpenDurable over an explicit filesystem; the
// fault-injection tests use it to crash persistence at every operation.
func OpenDurableFS(fs faultfs.FS, dir string, opt core.Options) (*Engine, error) {
	return OpenDurableStorageFS(fs, dir, opt, StorageConfigFromEnv())
}

// OpenDurableStorage is OpenDurable with an explicit storage backend; a
// directory last committed by the other backend is converted in place
// at the opening checkpoint.
func OpenDurableStorage(dir string, opt core.Options, cfg StorageConfig) (*Engine, error) {
	return OpenDurableStorageFS(faultfs.OS(), dir, opt, cfg)
}

// OpenDurableStorageFS is OpenDurableStorage over an explicit
// filesystem.
func OpenDurableStorageFS(fs faultfs.FS, dir string, opt core.Options, cfg StorageConfig) (*Engine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	lock, err := acquireDirLock(dir)
	if err != nil {
		return nil, err
	}
	e, err := openDurableFS(fs, dir, opt, cfg)
	if err != nil {
		releaseDirLock(lock)
		return nil, err
	}
	e.dirLock = lock
	return e, nil
}

// openDurableFS loads the committed state, replays the log, and takes
// the opening checkpoint; the caller holds the directory lock. The
// committed generation's own format (a ROOT file marks it paged, CSVs
// the memory layout) decides how it is read; cfg decides what the
// opening checkpoint writes, so backend conversion is just open + the
// checkpoint every open takes anyway.
func openDurableFS(fs faultfs.FS, dir string, opt core.Options, cfg StorageConfig) (*Engine, error) {
	gen, committed, err := readCurrent(fs, dir)
	if err != nil {
		return nil, err
	}
	var e *Engine
	var ps *storage.Store
	switch {
	case committed:
		snapDir := filepath.Join(dir, snapName(gen))
		if err := verifyManifest(fs, snapDir); err != nil {
			return nil, fmt.Errorf("%s: %w", snapName(gen), err)
		}
		pagedGen := pagedGeneration(fs, snapDir)
		if cfg.Backend == "" {
			// No backend requested: keep the committed generation's own
			// format rather than silently converting it. Conversion
			// happens only on an explicit "memory" or "paged".
			if pagedGen {
				cfg.Backend = StoragePaged
			} else {
				cfg.Backend = StorageMemory
			}
		}
		if pagedGen {
			e, ps, err = loadPagedState(fs, dir, snapDir, opt, cfg.cachePages())
		} else {
			e, err = loadState(fs, snapDir, opt)
		}
		if err != nil {
			return nil, err
		}
		// Loading rebuilt the state by replaying rendered statements,
		// which counted LSNs of its own; reset to the number the snapshot
		// actually embodies before the WAL replay resumes the count.
		e.lsn.Store(readSnapLSN(fs, snapDir))
		if hist := readSnapEpoch(fs, snapDir); hist != nil {
			e.epochHist = hist
			e.epoch.Store(hist[len(hist)-1].Epoch)
		}
		if ps != nil && !cfg.paged() {
			// Converting paged → memory: the trees were only needed to
			// load; the checkpoint below writes the CSV layout.
			ps.Close()
			ps = nil
		}
		if ps == nil && cfg.paged() {
			// Converting memory → paged: start an empty store and let the
			// opening checkpoint populate it from the recovered head.
			ps, err = storage.Create(fs, pagesPath(dir), cfg.cachePages())
			if err != nil {
				return nil, err
			}
			ps.MarkRebuild()
		}
		// Attach before replay so replayed WAL statements write through.
		e.pstore, e.storageCfg = ps, cfg
		if err := replayWAL(fs, filepath.Join(dir, walName(gen)), e); err != nil {
			if ps != nil {
				ps.Close()
			}
			return nil, err
		}
	case legacyLayout(fs, dir):
		e, err = loadState(fs, dir, opt)
		if err != nil {
			return nil, err
		}
	default:
		e = New(opt)
	}
	if cfg.paged() && e.pstore == nil {
		ps, err = storage.Create(fs, pagesPath(dir), cfg.cachePages())
		if err != nil {
			return nil, err
		}
		ps.MarkRebuild()
		e.pstore, e.storageCfg = ps, cfg
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	// Recovery adjusted the LSN counter (and possibly the epoch history)
	// after the last publish; republish so the head version's LSN stamp
	// matches before the opening checkpoint renders it.
	e.publishLocked()
	if err := e.checkpointLocked(fs, dir, gen); err != nil {
		if e.pstore != nil {
			e.pstore.Close()
		}
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	if e.pstore == nil {
		// A leftover page file from a paged past is dead weight once a
		// CSV generation committed.
		fs.Remove(pagesPath(dir))
	}
	return e, nil
}

// pagedGeneration reports whether a committed snapshot generation holds
// the paged layout (a ROOT file) rather than schema/data CSVs.
func pagedGeneration(fs faultfs.FS, snapDir string) bool {
	_, err := fs.Stat(filepath.Join(snapDir, storage.RootName))
	return err == nil
}

// readCurrent reads the committed generation from CURRENT; a missing
// file means the directory has no committed generation yet.
func readCurrent(fs faultfs.FS, dir string) (gen uint64, committed bool, err error) {
	data, err := fs.ReadFile(filepath.Join(dir, currentName))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, false, nil
		}
		return 0, false, err
	}
	name := strings.TrimSpace(string(data))
	if _, err := fmt.Sscanf(name, "snap-%d", &gen); err != nil || name != snapName(gen) {
		return 0, false, fmt.Errorf("%s: malformed content %q", currentName, name)
	}
	return gen, true, nil
}

// legacyLayout reports a flat Save directory (pre-durable format).
func legacyLayout(fs faultfs.FS, dir string) bool {
	_, err := fs.Stat(filepath.Join(dir, "schema.authdb"))
	return err == nil
}

// readSnapLSN reads a snapshot's LSN file. Snapshots taken before LSNs
// existed have none; their count restarts at zero, which is fine —
// LSNs only need to stay consistent between nodes going forward, and
// replication always transfers the position explicitly.
func readSnapLSN(fs faultfs.FS, snapDir string) uint64 {
	data, err := fs.ReadFile(filepath.Join(snapDir, lsnName))
	if err != nil {
		return 0
	}
	var lsn uint64
	if _, err := fmt.Sscanf(strings.TrimSpace(string(data)), "%d", &lsn); err != nil {
		return 0
	}
	return lsn
}

// verifyManifest checks every snapshot file against the CRC-32 and size
// recorded when the snapshot was committed.
func verifyManifest(fs faultfs.FS, snapDir string) error {
	data, err := fs.ReadFile(filepath.Join(snapDir, manifestName))
	if err != nil {
		return fmt.Errorf("reading manifest: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var sum uint32
		var size int
		var rel string
		if _, err := fmt.Sscanf(line, "%x %d %s", &sum, &size, &rel); err != nil {
			return fmt.Errorf("malformed manifest line %q", line)
		}
		b, err := fs.ReadFile(filepath.Join(snapDir, filepath.FromSlash(rel)))
		if err != nil {
			return fmt.Errorf("manifest names %s: %w", rel, err)
		}
		if len(b) != size || crc32.ChecksumIEEE(b) != sum {
			return fmt.Errorf("%s: checksum mismatch (snapshot corrupt)", rel)
		}
	}
	return nil
}

// replayWAL applies the log's valid prefix to e through an admin
// session. The engine is not yet attached to the log, so replayed
// statements are not re-journaled.
func replayWAL(fs faultfs.FS, path string, e *Engine) error {
	admin := e.NewSession("admin", true)
	_, err := wal.Replay(fs, path, func(i int, stmt string) error {
		if _, err := admin.Exec(stmt); err != nil {
			return fmt.Errorf("replaying %s record %d (%s): %w", filepath.Base(path), i+1, firstLine(stmt), err)
		}
		return nil
	})
	return err
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i] + " …"
	}
	return s
}

// Checkpoint folds the write-ahead log into a fresh snapshot generation,
// bounding recovery time. It runs automatically on OpenDurable; call it
// after bulk loads. The engine must be durable and not failed.
func (e *Engine) Checkpoint() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.dur == nil {
		return fmt.Errorf("engine has no durable directory")
	}
	if err := e.brokenNow(); err != nil {
		return fmt.Errorf("durable state failed: %w", err)
	}
	return e.checkpointLocked(e.dur.fs, e.dur.dir, e.dur.gen)
}

// checkpointLocked writes generation gen+1 and commits it. Callers hold
// e.mu. On error the previous generation stays committed and the
// engine's attachment is unchanged.
func (e *Engine) checkpointLocked(fs faultfs.FS, dir string, gen uint64) error {
	next := gen + 1
	// Flush anything the group-commit flusher still holds into the old
	// generation's WAL (completing those waiters and publishing to the
	// commit feed) before the log rotates out from under it. New records
	// cannot be staged while we hold e.mu.
	e.drainCommits()
	var files map[string][]byte
	var err error
	if e.pstore != nil {
		// Paged checkpoint: flush only the dirty pages to the shared page
		// file, then commit a generation holding just the tiny ROOT (plus
		// LSN/EPOCH below). The store's copy-on-write discipline means the
		// committed ROOT never references an in-flight page, so the flush
		// can tear anywhere and the old generation still reads cleanly.
		if e.pstore.NeedsRebuild() {
			if err := e.rebuildPageStore(); err != nil {
				return fmt.Errorf("rebuilding page store: %w", err)
			}
		}
		if _, err := e.pstore.Flush(); err != nil {
			return fmt.Errorf("flushing pages: %w", err)
		}
		files = map[string][]byte{storage.RootName: e.pstore.RenderRoot()}
	} else {
		files, err = e.snapshotFiles()
		if err != nil {
			return err
		}
	}
	// The LSN file pins the statement count the snapshot embodies; it is
	// part of the generation (and its MANIFEST), not of the flat Save
	// export, which is why it is added here and not in snapshotFiles.
	files[lsnName] = []byte(fmt.Sprintf("%d\n", e.lsn.Load()))
	// The EPOCH file pins the fencing-epoch history the same way; see
	// epoch.go.
	files[epochName] = renderEpochHist(e.epochHist)

	// Build the snapshot in a temp directory: contents, MANIFEST, fsyncs.
	tmp := filepath.Join(dir, snapName(next)+".tmp")
	if err := fs.RemoveAll(tmp); err != nil {
		return err
	}
	if err := fs.MkdirAll(filepath.Join(tmp, "data"), 0o755); err != nil {
		return err
	}
	var manifest strings.Builder
	for _, rel := range sortedPaths(files) {
		if err := writeFileSync(fs, filepath.Join(tmp, filepath.FromSlash(rel)), files[rel]); err != nil {
			return err
		}
		fmt.Fprintf(&manifest, "%08x %d %s\n", crc32.ChecksumIEEE(files[rel]), len(files[rel]), rel)
	}
	if err := writeFileSync(fs, filepath.Join(tmp, manifestName), []byte(manifest.String())); err != nil {
		return err
	}
	if err := fs.SyncDir(filepath.Join(tmp, "data")); err != nil {
		return err
	}
	if err := fs.SyncDir(tmp); err != nil {
		return err
	}

	// Move the snapshot to its final name and start its empty WAL.
	final := filepath.Join(dir, snapName(next))
	if err := fs.RemoveAll(final); err != nil {
		return err
	}
	if err := fs.Rename(tmp, final); err != nil {
		return err
	}
	if err := fs.SyncDir(dir); err != nil {
		return err
	}
	wl, err := wal.Create(fs, filepath.Join(dir, walName(next)))
	if err != nil {
		return err
	}

	// Commit point: CURRENT flips to the new generation atomically.
	curTmp := filepath.Join(dir, currentName+".tmp")
	if err := writeFileSync(fs, curTmp, []byte(snapName(next)+"\n")); err != nil {
		wl.Close()
		return err
	}
	if err := fs.Rename(curTmp, filepath.Join(dir, currentName)); err != nil {
		wl.Close()
		return err
	}
	if err := fs.SyncDir(dir); err != nil {
		wl.Close()
		return err
	}

	// Committed. Install the new log (under walMu so the flusher never
	// sees a half-swapped handle) and reclaim the old generation (best
	// effort — leftovers are ignored and retried next checkpoint).
	e.walMu.Lock()
	if e.walH != nil {
		e.walH.Close()
	}
	e.walH = wl
	e.walMu.Unlock()
	e.dur = &durable{fs: fs, dir: dir, gen: next}
	e.snapGen.Store(next)
	e.snapBase.Store(e.lsn.Load())
	e.commitMu.Lock()
	e.durableLSN.Store(e.lsn.Load())
	e.commitCond.Broadcast()
	e.commitMu.Unlock()
	if e.pstore != nil {
		// Pages freed before this commit belonged to trees the old ROOT
		// could still reach; now that CURRENT points past it they are
		// reusable.
		e.pstore.Commit()
	}
	if gen > 0 {
		fs.RemoveAll(filepath.Join(dir, snapName(gen)))
		fs.Remove(filepath.Join(dir, walName(gen)))
	}
	return nil
}

// durCheck refuses mutations once the durable layer has failed.
// Callers hold e.mu.
func (e *Engine) durCheck() error {
	if e.dur == nil {
		return nil
	}
	if err := e.brokenNow(); err != nil {
		return fmt.Errorf("durable log failed, mutations are disabled: %w", err)
	}
	return nil
}

// Close stops the group-commit flusher (after a final drain), releases
// the durable log handle, and drops the directory lock. The in-memory
// state stays readable; further mutations on a durable engine fail.
// Engines without a durable directory close trivially.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.groupOn {
		e.drainCommits()
		close(e.flusherStop)
		<-e.flusherDone
		e.flusherStop, e.flusherDone = nil, nil
		e.groupOn = false
	}
	e.walMu.Lock()
	defer e.walMu.Unlock()
	// Release the directory lock even on engines already broken or
	// closed; a dead handle must never keep the directory unusable.
	if e.dirLock != nil {
		releaseDirLock(e.dirLock)
		e.dirLock = nil
	}
	if e.dur == nil || e.walH == nil {
		return nil
	}
	err := e.walH.Close()
	e.setBroken(errors.New("engine closed"))
	e.walH = nil
	return err
}
