package engine_test

import (
	"testing"

	"authdb/internal/core"
	"authdb/internal/engine"
	"authdb/internal/workload"
)

// FuzzSessionExec drives arbitrary statements through both an admin and a
// user session over the paper database: whatever the input, the engine
// must return an error or a result — never panic — and the authorization
// invariant must hold: a user result never contains a value the admin
// result for the same statement lacks.
func FuzzSessionExec(f *testing.F) {
	seeds := []string{
		`retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY)`,
		`retrieve (EMPLOYEE:1.NAME, EMPLOYEE:2.NAME) where EMPLOYEE:1.TITLE = EMPLOYEE:2.TITLE`,
		`retrieve (count(EMPLOYEE.NAME), avg(EMPLOYEE.SALARY))`,
		`explain retrieve (PROJECT.NUMBER) where PROJECT.BUDGET >= 250000`,
		`insert into PROJECT values (zz-1, Acme, 1)`,
		`delete from ASSIGNMENT where P_NO = vg-13`,
		`show meta`,
		`show rights Klein`,
		`view W (EMPLOYEE.NAME) where EMPLOYEE.SALARY > 0 or EMPLOYEE.TITLE = manager`,
		`permit SAE to Someone`,
		`retrieve (EMPLOYEE.NAME) where EMPLOYEE.SALARY ≥ 26000 and EMPLOYEE.SALARY ≠ 32000`,
		`retrieve (PROJECT.NUMBER, PROJECT.BUDGET) where PROJECT.BUDGET > 250000 and PROJECT.BUDGET <= 500000`,
		`retrieve (EMPLOYEE.NAME, PROJECT.SPONSOR) where EMPLOYEE.SALARY < 30000 and PROJECT.BUDGET >= 300000`,
		`retrieve (ASSIGNMENT.E_NAME) where ASSIGNMENT.P_NO >= aa-00 and ASSIGNMENT.P_NO < zz-99`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, stmt string) {
		// Fuzz the full execution stack: indexes and mask pushdown on.
		opt := core.DefaultOptions()
		opt.MaskPushdown = true
		e := engine.New(opt)
		if _, err := e.NewSession("admin", true).ExecScript(workload.PaperScript); err != nil {
			t.Fatal(err)
		}
		adminRes, adminErr := e.NewSession("admin", true).Exec(stmt)
		userRes, userErr := e.NewSession("Brown", false).Exec(stmt)
		if adminErr != nil || userErr != nil {
			return // rejections are fine; panics are the target
		}
		if adminRes.Relation == nil || userRes.Relation == nil {
			return
		}
		if adminRes.Relation.Arity() != userRes.Relation.Arity() {
			return // e.g. admin-only output shapes
		}
		// Every non-null user cell must appear in some admin row at the
		// same column (no fabricated data).
		for _, ur := range userRes.Relation.Tuples() {
			for j, v := range ur {
				if v.IsNull() {
					continue
				}
				found := false
				for _, ar := range adminRes.Relation.Tuples() {
					if ar[j].Equal(v) {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("user result fabricated %v at column %d for %q", v, j, stmt)
				}
			}
		}
	})
}
