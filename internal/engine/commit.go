// Log sequence numbers, WAL group commit, and the commit feed.
//
// Every applied mutating statement gets the next LSN — a counter over
// the engine's entire statement history, persisted as the LSN file of
// each snapshot generation plus the position in the generation's WAL.
// Two engines that applied the same statement prefix therefore agree on
// the LSN, which is what lets a replica resume a replication stream
// from its own persisted position.
//
// Journaling runs in one of two modes:
//
//   - Serial (the default): the statement's WAL record is written and
//     fsynced inside the engine's critical section, exactly as before
//     group commit existed. Deterministic, and what the crash-sweep
//     tests exercise.
//   - Group commit (SetGroupCommit): the record is staged under the
//     engine lock — fixing the WAL order to the apply order — and the
//     session waits for durability after releasing the lock. A single
//     flusher goroutine writes everything staged with one Write and one
//     Sync (wal.AppendBatch), so n concurrent writers share one fsync
//     instead of paying for n. The wait is bounded by one in-flight
//     fsync: a stager never waits behind more than the sync in progress
//     plus its own.
//
// Either way a statement is acknowledged only after it is durable, and
// only durable statements are published to the commit feed — a replica
// can never observe a statement the primary could still lose.
package engine

import (
	"fmt"

	"authdb/internal/parser"
)

// pendingCommit is one staged WAL record awaiting the shared fsync.
type pendingCommit struct {
	lsn  uint64
	text string
	done chan error
}

// Commit is one durably journaled statement, as delivered to commit
// subscribers in LSN order.
type Commit struct {
	LSN  uint64
	Stmt string
}

// CommitSub is a subscription to the engine's commit feed. The channel
// is closed when the subscriber falls behind (its buffer overflows) or
// is unsubscribed; a replication follower treats closure as a
// disconnect and re-attaches from its last durable position.
type CommitSub struct {
	ch     chan Commit
	closed bool
}

// C returns the subscription's delivery channel.
func (s *CommitSub) C() <-chan Commit { return s.ch }

// SubscribeCommits registers a subscriber with the given buffer; every
// statement made durable after the call is delivered in LSN order.
// Statements durable before the call are on disk (the WAL of the
// current generation, or the snapshot) — subscribe first, then read
// disk, and the two sources overlap rather than gap.
func (e *Engine) SubscribeCommits(buf int) *CommitSub {
	if buf <= 0 {
		buf = 1024
	}
	sub := &CommitSub{ch: make(chan Commit, buf)}
	e.pubMu.Lock()
	e.subs[sub] = struct{}{}
	e.pubMu.Unlock()
	return sub
}

// UnsubscribeCommits removes the subscription and closes its channel.
func (e *Engine) UnsubscribeCommits(sub *CommitSub) {
	e.pubMu.Lock()
	defer e.pubMu.Unlock()
	if _, ok := e.subs[sub]; ok {
		delete(e.subs, sub)
		if !sub.closed {
			sub.closed = true
			close(sub.ch)
		}
	}
}

// hasSubs reports whether any commit subscriber is attached.
func (e *Engine) hasSubs() bool {
	e.pubMu.Lock()
	defer e.pubMu.Unlock()
	return len(e.subs) > 0
}

// publishCommits delivers a durable batch to every subscriber. A
// subscriber whose buffer is full is disconnected (channel closed) —
// the slow-follower policy: it re-attaches and catches up from disk
// instead of stalling the publisher.
func (e *Engine) publishCommits(batch []Commit) {
	e.pubMu.Lock()
	defer e.pubMu.Unlock()
	for sub := range e.subs {
		for i, c := range batch {
			select {
			case sub.ch <- c:
			default:
				_ = i
				delete(e.subs, sub)
				sub.closed = true
				close(sub.ch)
				e.met.Counter("authdb_repl_slow_subscriber_disconnects_total").Inc()
			}
			if sub.closed {
				break
			}
		}
	}
}

// LSN returns the engine's current log sequence number: the count of
// mutating statements applied over its entire history. It reads the
// published head version rather than the internal counter, so the value
// is always consistent with what ReplSnapshot and retrieves observe — a
// commit becomes visible here only once its version is published, not
// while its WAL record is still being written inside the critical
// section.
func (e *Engine) LSN() uint64 { return e.headVersion().lsn }

// DurableLSN returns the highest LSN whose WAL record (or snapshot) has
// reached stable storage; it trails LSN by the commits in flight.
func (e *Engine) DurableLSN() uint64 { return e.durableLSN.Load() }

// Generation returns the committed snapshot generation (0 for
// in-memory engines).
func (e *Engine) Generation() uint64 { return e.snapGen.Load() }

// Mutating reports whether the statement changes state (and so is
// journaled, replicated, and rejected on read-only replicas).
func Mutating(p parser.Stmt) bool {
	switch p.(type) {
	case parser.CreateRelation, parser.Insert, parser.Delete,
		parser.ViewStmt, parser.DropView, parser.Permit, parser.Revoke:
		return true
	}
	return false
}

// setBroken records the first journaling failure; all later mutations
// fail stop (the in-memory state may be ahead of the log).
func (e *Engine) setBroken(err error) {
	e.commitMu.Lock()
	if e.brokenErr == nil {
		e.brokenErr = err
	}
	e.commitCond.Broadcast()
	e.commitMu.Unlock()
}

// brokenNow returns the journaling failure, if any.
func (e *Engine) brokenNow() error {
	e.commitMu.Lock()
	defer e.commitMu.Unlock()
	return e.brokenErr
}

// logStmt journals the applied mutating statement p: it assigns the
// next LSN and either syncs the record in place (serial mode) or stages
// it for the group-commit flusher, leaving the durability wait on
// s.pendingWait for ExecStmtContext to collect after the engine lock is
// released. Callers hold e.mu for writing and have already applied the
// mutation.
func (s *Session) logStmt(p parser.Stmt) error {
	// Mirror the mutation into the page store first (same critical
	// section, same order as the log). A write-through failure is
	// fail-stop like a WAL failure: the store may have half-applied the
	// statement, and marking the engine broken keeps every
	// durCheck-guarded checkpoint from ever committing the drift.
	if err := s.eng.pageApply(p); err != nil {
		s.eng.setBroken(err)
		return fmt.Errorf("paged storage write-through: %w", err)
	}
	w, err := s.eng.stageStmt(p)
	if err != nil {
		return err
	}
	if !s.applier {
		s.eng.noteOriginWrite()
	}
	s.pendingWait = w
	return nil
}

// stageStmt is logStmt's engine half; callers hold e.mu for writing.
func (e *Engine) stageStmt(p parser.Stmt) (func() error, error) {
	lsn := e.lsn.Add(1)
	if e.dur == nil {
		// In-memory engines count LSNs (so replicas of every flavor agree
		// on positions) and are trivially durable; with subscribers
		// attached they still feed the commit stream, so an in-memory
		// primary can serve followers (which bootstrap by snapshot —
		// there is no WAL tail to read).
		e.durableLSN.Store(lsn)
		if e.hasSubs() {
			if text, err := parser.Render(p); err == nil {
				e.publishCommits([]Commit{{LSN: lsn, Stmt: text}})
			}
			// A render failure would gap the feed; the follower detects
			// the gap, reconnects, and recovers by snapshot.
		}
		return nil, nil
	}
	if err := e.brokenNow(); err != nil {
		return nil, fmt.Errorf("journaling statement: %w", err)
	}
	text, err := parser.Render(p)
	if err != nil {
		e.setBroken(err)
		return nil, fmt.Errorf("journaling statement: %w", err)
	}
	if e.groupOn {
		pc := pendingCommit{lsn: lsn, text: text, done: make(chan error, 1)}
		e.commitMu.Lock()
		e.commitQ = append(e.commitQ, pc)
		e.commitMu.Unlock()
		select {
		case e.commitWake <- struct{}{}:
		default:
		}
		return func() error {
			if err := <-pc.done; err != nil {
				return fmt.Errorf("journaling statement: %w", err)
			}
			return nil
		}, nil
	}
	// Serial mode: write and sync in place, inside the critical section.
	e.walMu.Lock()
	err = e.appendDurableLocked([]pendingCommit{{lsn: lsn, text: text}})
	e.walMu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("journaling statement: %w", err)
	}
	return nil, nil
}

// appendDurableLocked writes a staged run to the WAL with one sync,
// advances the durable LSN, completes the waiters, and publishes the
// batch to the commit feed. Callers hold e.walMu. On failure the engine
// is marked broken and every waiter gets the error.
func (e *Engine) appendDurableLocked(batch []pendingCommit) error {
	err := e.brokenNow()
	if err == nil && e.walH == nil {
		err = fmt.Errorf("wal closed")
	}
	if err == nil {
		stmts := make([]string, len(batch))
		for i, pc := range batch {
			stmts[i] = pc.text
		}
		err = e.walH.AppendBatch(stmts)
	}
	if err != nil {
		e.setBroken(err)
		for _, pc := range batch {
			if pc.done != nil {
				pc.done <- err
			}
		}
		return err
	}
	last := batch[len(batch)-1].lsn
	e.commitMu.Lock()
	e.durableLSN.Store(last)
	e.commitCond.Broadcast()
	e.commitMu.Unlock()
	e.met.Counter("authdb_wal_appends_total").Add(int64(len(batch)))
	e.met.Counter("authdb_wal_group_commits_total").Inc()
	cs := make([]Commit, len(batch))
	for i, pc := range batch {
		cs[i] = Commit{LSN: pc.lsn, Stmt: pc.text}
	}
	e.publishCommits(cs)
	for _, pc := range batch {
		if pc.done != nil {
			pc.done <- nil
		}
	}
	return nil
}

// flusher is the group-commit writer: it drains everything staged since
// the last flush and makes it durable with one fsync. Queue steals and
// WAL writes both happen under walMu, so a checkpoint (which drains
// under the same lock while holding e.mu against new stagers) can
// rotate the log without a record ever landing in the wrong generation.
func (e *Engine) flusher(stop, done chan struct{}) {
	defer close(done)
	for {
		select {
		case <-e.commitWake:
		case <-stop:
			e.flushPending()
			return
		}
		e.flushPending()
	}
}

// flushPending drains and durably writes the staged queue.
func (e *Engine) flushPending() {
	for {
		e.walMu.Lock()
		e.commitMu.Lock()
		batch := e.commitQ
		e.commitQ = nil
		e.commitMu.Unlock()
		if len(batch) == 0 {
			e.walMu.Unlock()
			return
		}
		e.appendDurableLocked(batch)
		e.walMu.Unlock()
	}
}

// drainCommits synchronously flushes every staged record; callers hold
// e.mu for writing (so no new records can be staged meanwhile).
// Checkpoints drain before rotating the WAL so a record is never left
// for a generation that no longer owns it.
func (e *Engine) drainCommits() {
	e.flushPending()
}

// SetGroupCommit switches between serial journaling (off, the default:
// one fsync per statement, inside the engine's critical section) and
// group commit (on: concurrent statements share one fsync). Switching
// off drains the queue first; results are identical either way, only
// the fsync schedule differs. The network server and the replication
// applier turn it on.
func (e *Engine) SetGroupCommit(on bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if on == e.groupOn {
		return
	}
	if on {
		e.flusherStop = make(chan struct{})
		e.flusherDone = make(chan struct{})
		go e.flusher(e.flusherStop, e.flusherDone)
	} else {
		e.drainCommits()
		close(e.flusherStop)
		<-e.flusherDone
		e.flusherStop, e.flusherDone = nil, nil
	}
	e.groupOn = on
}

// WaitDurable blocks until every statement up to lsn is durable (or the
// durable layer fails, returning its error). With an async-commit
// session this turns n applied statements into one wait.
func (e *Engine) WaitDurable(lsn uint64) error {
	// Wake the flusher in case the caller staged without waiting.
	select {
	case e.commitWake <- struct{}{}:
	default:
	}
	e.commitMu.Lock()
	defer e.commitMu.Unlock()
	for e.durableLSN.Load() < lsn && e.brokenErr == nil {
		e.commitCond.Wait()
	}
	if e.durableLSN.Load() >= lsn {
		return nil
	}
	return fmt.Errorf("journaling statement: %w", e.brokenErr)
}
