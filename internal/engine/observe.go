// Observability and the shared statement-dispatch surface. The engine
// owns a metrics registry; every statement execution is recorded here
// (requests by kind, latency, masked cells, guard trips — WAL appends
// are recorded by the durable layer), and Session.Dispatch is the one
// entry point the REPL and the network server both route input through,
// so the statement surface (including the `\stats` admin command) stays
// identical everywhere.
package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"authdb/internal/guard"
	"authdb/internal/metrics"
	"authdb/internal/parser"
)

// ErrNotAuthorized reports that the session's principal lacks the
// authority for a statement: an administrator-only statement from a user
// session, or an update outside every permitted view. Test with
// errors.Is; the wire protocol maps it to a stable code.
var ErrNotAuthorized = errors.New("not authorized")

// ErrInternal reports a panic recovered at the session boundary; the
// statement failed but the engine keeps serving. Test with errors.Is.
var ErrInternal = errors.New("internal error")

// ErrReadOnly reports a mutating statement on a read-only session — a
// replica serving reads while the primary owns the statement log. Test
// with errors.Is; the wire protocol maps it to READ_ONLY and names the
// primary.
var ErrReadOnly = errors.New("read-only replica")

// Metrics exposes the engine's metrics registry; the network server
// registers its own series (connections, protocol errors) on the same
// registry so one scrape shows the whole process.
func (e *Engine) Metrics() *metrics.Registry { return e.met }

// registerMetrics installs the callback series whose values other
// subsystems already track.
func (e *Engine) registerMetrics() {
	e.met.CounterFunc("authdb_mask_cache_hits_total", func() float64 {
		h, _, _ := e.MaskCacheStats()
		return float64(h)
	})
	e.met.CounterFunc("authdb_mask_cache_misses_total", func() float64 {
		_, m, _ := e.MaskCacheStats()
		return float64(m)
	})
	e.met.GaugeFunc("authdb_mask_cache_entries", func() float64 {
		_, _, n := e.MaskCacheStats()
		return float64(n)
	})
	// Closure effectiveness: hits serve materialized results without
	// running either pipeline; refreshes are the subset that replayed an
	// appended window first; invalidations split into definition-driven
	// (generation moved, entry dropped) and data-driven (revisions moved
	// beyond repair).
	e.met.CounterFunc("authdb_mask_closure_hits_total", func() float64 {
		return float64(e.MaskClosureStats().Hits)
	})
	e.met.CounterFunc("authdb_mask_closure_misses_total", func() float64 {
		return float64(e.MaskClosureStats().Misses)
	})
	e.met.CounterFunc("authdb_mask_closure_refreshes_total", func() float64 {
		return float64(e.MaskClosureStats().Refreshes)
	})
	e.met.CounterFunc("authdb_mask_closure_invalidations_total", func() float64 {
		return float64(e.MaskClosureStats().Invalidations())
	})
	e.met.GaugeFunc("authdb_mask_closure_entries", func() float64 {
		return float64(e.MaskClosureStats().Entries)
	})
	e.met.GaugeFunc("authdb_mask_closure_resident_rows", func() float64 {
		return float64(e.MaskClosureStats().ResidentRows)
	})
	// Replication lag is an LSN delta, so both ends of a stream expose
	// their position: applied, durable, and the snapshot generation.
	e.met.GaugeFunc("authdb_wal_lsn", func() float64 {
		return float64(e.lsn.Load())
	})
	e.met.GaugeFunc("authdb_wal_durable_lsn", func() float64 {
		return float64(e.durableLSN.Load())
	})
	e.met.GaugeFunc("authdb_snapshot_generation", func() float64 {
		return float64(e.snapGen.Load())
	})
	e.met.GaugeFunc("authdb_repl_epoch", func() float64 {
		return float64(e.epoch.Load())
	})
	e.met.GaugeFunc("authdb_db_version", func() float64 {
		seq, _ := e.DBVersion()
		return float64(seq)
	})
	// Paged-backend buffer cache and incremental-checkpoint series; all
	// zero on the memory backend.
	e.met.CounterFunc("authdb_page_cache_hits_total", func() float64 {
		return float64(e.PageStats().Hits)
	})
	e.met.CounterFunc("authdb_page_cache_misses_total", func() float64 {
		return float64(e.PageStats().Misses)
	})
	e.met.CounterFunc("authdb_page_cache_evictions_total", func() float64 {
		return float64(e.PageStats().Evictions)
	})
	e.met.CounterFunc("authdb_page_reads_total", func() float64 {
		return float64(e.PageStats().PageReads)
	})
	e.met.CounterFunc("authdb_page_writes_total", func() float64 {
		return float64(e.PageStats().PageWrites)
	})
	e.met.GaugeFunc("authdb_page_cache_pages", func() float64 {
		return float64(e.PageStats().Cached)
	})
	e.met.GaugeFunc("authdb_pages_total", func() float64 {
		return float64(e.PageStats().Pages)
	})
	e.met.GaugeFunc("authdb_checkpoint_dirty_pages", func() float64 {
		return float64(e.PageStats().DirtyFlush)
	})
}

// stmtKind names a statement for the per-kind request counters.
func stmtKind(p parser.Stmt) string {
	switch p := p.(type) {
	case parser.CreateRelation:
		return "relation"
	case parser.Insert:
		return "insert"
	case parser.Delete:
		return "delete"
	case parser.ViewStmt:
		return "view"
	case parser.DropView:
		return "drop_view"
	case parser.Permit:
		return "permit"
	case parser.Revoke:
		return "revoke"
	case parser.Retrieve:
		if len(p.Aggs) > 0 {
			return "retrieve_agg"
		}
		return "retrieve"
	case parser.Explain:
		return "explain"
	case parser.Show:
		return "show"
	default:
		return "other"
	}
}

// observeExec records one statement execution: the request count and
// latency by kind, delivered vs withheld cells on authorized retrievals,
// and guard cancellation/budget trips on failures.
func (e *Engine) observeExec(kind string, d time.Duration, res *Result, err error) {
	e.met.Counter("authdb_requests_total", "kind", kind).Inc()
	e.met.Histogram("authdb_exec_seconds", "kind", kind).Observe(d.Seconds())
	switch {
	case err == nil:
		if res != nil && res.Decision != nil {
			st := res.Decision.Stats
			e.met.Counter("authdb_cells_delivered_total").Add(int64(st.RevealedCells))
			e.met.Counter("authdb_cells_withheld_total").Add(int64(st.Cells - st.RevealedCells))
		}
	case errors.Is(err, guard.ErrCanceled):
		e.met.Counter("authdb_guard_canceled_total").Inc()
	case errors.Is(err, guard.ErrBudgetExceeded):
		e.met.Counter("authdb_guard_budget_total").Inc()
	default:
		e.met.Counter("authdb_exec_errors_total").Inc()
	}
}

// Dispatch executes one line of input: a shared meta-command (`\stats`,
// administrator only; `\begin snapshot` / `\end`, any session) or a
// statement. The REPL and the network server both route user input
// through Dispatch so every front end exposes the same surface.
func (s *Session) Dispatch(ctx context.Context, input string) (*Result, error) {
	trimmed := strings.TrimSpace(input)
	if strings.HasPrefix(trimmed, `\`) {
		switch strings.TrimSpace(strings.TrimSuffix(trimmed, ";")) {
		case `\stats`:
			if err := s.requireAdmin(`\stats`); err != nil {
				return nil, err
			}
			return &Result{Text: strings.TrimRight(s.eng.met.Text(), "\n")}, nil
		case `\begin snapshot`, `\begin`:
			if s.pinned != nil {
				return nil, fmt.Errorf(`snapshot block already open (\end to close)`)
			}
			s.pinned = s.eng.headVersion()
			return &Result{Text: fmt.Sprintf("snapshot pinned at lsn %d", s.pinned.lsn)}, nil
		case `\end`:
			if s.pinned == nil {
				return nil, fmt.Errorf(`no snapshot block open (\begin snapshot to open one)`)
			}
			s.pinned = nil
			return &Result{Text: "snapshot released"}, nil
		default:
			return nil, fmt.Errorf(`unknown command %s (statements, \stats, \begin snapshot, \end)`, trimmed)
		}
	}
	return s.ExecContext(ctx, input)
}
