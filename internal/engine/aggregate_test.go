package engine_test

import (
	"strings"
	"testing"

	"authdb/internal/value"
)

func TestAggregateAdmin(t *testing.T) {
	e := paperEngine(t)
	res, err := e.NewSession("admin", true).Exec(
		`retrieve (EMPLOYEE.TITLE, count(EMPLOYEE.NAME), avg(EMPLOYEE.SALARY), min(EMPLOYEE.SALARY), max(EMPLOYEE.SALARY), sum(EMPLOYEE.SALARY))`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Len() != 3 {
		t.Fatalf("groups = %d, want 3\n%s", res.Relation.Len(), res.Relation)
	}
	if res.Relation.Attrs[1] != "count(NAME)" || res.Relation.Attrs[2] != "avg(SALARY)" {
		t.Fatalf("attrs = %v", res.Relation.Attrs)
	}
	for _, row := range res.Relation.Tuples() {
		if row[1].AsInt() != 1 {
			t.Fatalf("every title is unique here: %v", row)
		}
		if !row[2].Equal(row[3]) || !row[3].Equal(row[4]) || !row[4].Equal(row[5]) {
			t.Fatalf("singleton group aggregates must coincide: %v", row)
		}
	}
}

func TestAggregateGlobalGroup(t *testing.T) {
	e := paperEngine(t)
	res, err := e.NewSession("admin", true).Exec(
		`retrieve (count(EMPLOYEE.NAME), sum(EMPLOYEE.SALARY), avg(EMPLOYEE.SALARY))`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Len() != 1 {
		t.Fatalf("global aggregate groups = %d", res.Relation.Len())
	}
	row := res.Relation.Tuples()[0]
	if row[0].AsInt() != 3 || row[1].AsInt() != 80000 || row[2].AsInt() != 26666 {
		t.Fatalf("row = %v", row)
	}
}

// TestAggregateRespectsMasking: aggregates fold the DELIVERED data only.
// Brown cannot group by TITLE (SAE hides it), and an intruder gets
// nothing at all.
func TestAggregateRespectsMasking(t *testing.T) {
	e := paperEngine(t)
	brown := e.NewSession("Brown", false)
	res, err := brown.Exec(`retrieve (EMPLOYEE.TITLE, avg(EMPLOYEE.SALARY))`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Len() != 0 {
		t.Fatalf("groups keyed on a withheld column must vanish:\n%s", res.Relation)
	}
	// Global aggregates over fully delivered columns work.
	res, err = brown.Exec(`retrieve (count(EMPLOYEE.NAME), avg(EMPLOYEE.SALARY))`)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Relation.Tuples()[0]
	if row[0].AsInt() != 3 || row[1].AsInt() != 26666 {
		t.Fatalf("row = %v", row)
	}
	// An intruder's aggregate folds an empty delivery into a null (the
	// group key NAME is withheld entirely, so even the single global
	// group sees no values... with no group columns the single group
	// exists but all folds are null).
	res, err = e.NewSession("intruder", false).Exec(`retrieve (avg(EMPLOYEE.SALARY))`)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Relation.Tuples() {
		if !r[0].IsNull() {
			t.Fatalf("intruder aggregate leaked: %v", r)
		}
	}
}

// TestAggregatePartialColumn: when a column is delivered only for some
// rows, the fold skips the withheld values — exactly what the user could
// compute from the masked raw answer.
func TestAggregatePartialColumn(t *testing.T) {
	e := paperEngine(t)
	// Klein's ELP covers the budgets of large projects; vg-13 (150,000)
	// is outside.
	res, err := e.NewSession("Klein", false).Exec(
		`retrieve (count(PROJECT.NUMBER), min(PROJECT.BUDGET))`)
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	// ELP spans three relations and is entirety-pruned on this
	// single-relation query: nothing is delivered.
	for _, r := range res.Relation.Tuples() {
		if !r[0].IsNull() || !r[1].IsNull() {
			t.Fatalf("single-relation query must deliver nothing to Klein: %v", r)
		}
	}
}

func TestAggregateStringMinMax(t *testing.T) {
	e := paperEngine(t)
	res, err := e.NewSession("admin", true).Exec(
		`retrieve (min(EMPLOYEE.NAME), max(EMPLOYEE.NAME))`)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Relation.Tuples()[0]
	if row[0] != value.String("Brown") || row[1] != value.String("Smith") {
		t.Fatalf("row = %v", row)
	}
}

func TestAggregateRejectedInViews(t *testing.T) {
	e := paperEngine(t)
	admin := e.NewSession("admin", true)
	if _, err := admin.Exec(`view AV (avg(EMPLOYEE.SALARY))`); err == nil ||
		!strings.Contains(err.Error(), "retrieve") {
		t.Fatalf("aggregate view accepted: %v", err)
	}
}

func TestAggregateParseShapes(t *testing.T) {
	e := paperEngine(t)
	admin := e.NewSession("admin", true)
	// Aggregate over a joined query.
	res, err := admin.Exec(`
		retrieve (PROJECT.SPONSOR, count(ASSIGNMENT.E_NAME))
		  where ASSIGNMENT.P_NO = PROJECT.NUMBER`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Len() != 3 {
		t.Fatalf("sponsor groups = %d\n%s", res.Relation.Len(), res.Relation)
	}
	if _, err := admin.Exec(`retrieve (count(EMPLOYEE.NAME)`); err == nil {
		t.Fatal("unbalanced parens accepted")
	}
	if _, err := admin.Exec(`retrieve (median(EMPLOYEE.SALARY))`); err == nil {
		t.Fatal("unknown aggregate accepted (must parse as relation ref and fail analysis)")
	}
}
