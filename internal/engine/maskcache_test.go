package engine_test

import (
	"strings"
	"sync"
	"testing"

	"authdb/internal/engine"
	"authdb/internal/workload"
)

// renderResult serializes a retrieve's delivered relation (in canonical
// order) and permit statements, for byte-identical comparisons between
// cached and freshly computed answers.
func renderResult(res *engine.Result) string {
	var b strings.Builder
	for _, t := range res.Relation.Sorted() {
		for _, v := range t {
			b.WriteString(v.String())
			b.WriteByte('|')
		}
		b.WriteByte('\n')
	}
	for _, p := range res.Permits {
		b.WriteString(p.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func TestMaskCacheHitIsByteIdentical(t *testing.T) {
	e := paperEngine(t)
	// Pin the layer under test: with the closure on, a repeated retrieve
	// is served from materialized state and never consults this cache.
	e.SetMaskClosureEnabled(false)
	s := e.NewSession("Brown", false)
	first, err := s.Exec(workload.Example1Query)
	if err != nil {
		t.Fatal(err)
	}
	hitsBefore, missesBefore, _ := e.MaskCacheStats()
	if missesBefore == 0 {
		t.Fatal("first retrieve should have missed the mask cache")
	}
	second, err := s.Exec(workload.Example1Query)
	if err != nil {
		t.Fatal(err)
	}
	hits, misses, _ := e.MaskCacheStats()
	if hits != hitsBefore+1 || misses != missesBefore {
		t.Fatalf("second retrieve: hits %d→%d, misses %d→%d; want a pure hit",
			hitsBefore, hits, missesBefore, misses)
	}
	if renderResult(first) != renderResult(second) {
		t.Fatalf("cached answer differs:\nfirst:\n%s\nsecond:\n%s",
			renderResult(first), renderResult(second))
	}
	if first.Decision.Mask != second.Decision.Mask {
		// The plan (and with it the mask) should be the same shared
		// object, not a recomputation that happened to agree.
		t.Fatal("second retrieve did not reuse the cached mask")
	}
}

func TestMaskCacheRevokeAndPermitInvalidate(t *testing.T) {
	e := paperEngine(t)
	admin := e.NewSession("admin", true)
	brown := e.NewSession("Brown", false)

	before, err := brown.Exec(workload.Example1Query)
	if err != nil {
		t.Fatal(err)
	}
	if before.Decision.Denied {
		t.Fatal("Brown's Example 1 should deliver rows while PSA is permitted")
	}
	if _, err := brown.Exec(workload.Example1Query); err != nil {
		t.Fatal(err) // warm the cache
	}

	if _, err := admin.Exec(`revoke PSA from Brown`); err != nil {
		t.Fatal(err)
	}
	after, err := brown.Exec(workload.Example1Query)
	if err != nil {
		t.Fatal(err)
	}
	if !after.Decision.Denied {
		t.Fatalf("stale mask served after revoke: delivered %d rows", after.Relation.Len())
	}

	if _, err := admin.Exec(`permit PSA to Brown`); err != nil {
		t.Fatal(err)
	}
	restored, err := brown.Exec(workload.Example1Query)
	if err != nil {
		t.Fatal(err)
	}
	if renderResult(restored) != renderResult(before) {
		t.Fatalf("after re-permit, answer differs from original:\nbefore:\n%s\nafter:\n%s",
			renderResult(before), renderResult(restored))
	}
}

func TestMaskCacheViewRedefinitionInvalidates(t *testing.T) {
	e := paperEngine(t)
	admin := e.NewSession("admin", true)
	brown := e.NewSession("Brown", false)

	before, err := brown.Exec(workload.Example1Query)
	if err != nil {
		t.Fatal(err)
	}
	if before.Relation.Len() == 0 {
		t.Fatal("expected delivered rows before redefinition")
	}
	// Redefine PSA to cover a sponsor with no projects: the old cached
	// mask would keep delivering Acme's projects.
	if _, err := admin.Exec(`drop view PSA`); err != nil {
		t.Fatal(err)
	}
	if _, err := admin.Exec(`view PSA (PROJECT.NUMBER, PROJECT.SPONSOR, PROJECT.BUDGET)
		where PROJECT.SPONSOR = Nobody`); err != nil {
		t.Fatal(err)
	}
	if _, err := admin.Exec(`permit PSA to Brown`); err != nil {
		t.Fatal(err)
	}
	after, err := brown.Exec(workload.Example1Query)
	if err != nil {
		t.Fatal(err)
	}
	// The new mask admits only SPONSOR = Nobody rows, of which there are
	// none; a stale mask would keep delivering Acme's projects.
	if after.Relation.Len() != 0 {
		t.Fatalf("stale mask survived view redefinition: delivered %d rows:\n%s",
			after.Relation.Len(), renderResult(after))
	}
}

func TestMaskCacheSurvivesDataChanges(t *testing.T) {
	e := paperEngine(t)
	// Pin the layer under test: the closure would serve these retrieves
	// without consulting the mask cache, masking the counters.
	e.SetMaskClosureEnabled(false)
	admin := e.NewSession("admin", true)
	brown := e.NewSession("Brown", false)

	if _, err := brown.Exec(workload.Example1Query); err != nil {
		t.Fatal(err)
	}
	hits0, misses0, _ := e.MaskCacheStats()

	// Data mutations must not invalidate: the mask derives from
	// definitions only.
	if _, err := admin.Exec(`insert into PROJECT values (zz-99, Acme, 990000)`); err != nil {
		t.Fatal(err)
	}
	res, err := brown.Exec(workload.Example1Query)
	if err != nil {
		t.Fatal(err)
	}
	hits1, misses1, _ := e.MaskCacheStats()
	if misses1 != misses0 || hits1 != hits0+1 {
		t.Fatalf("insert invalidated the cache: hits %d→%d, misses %d→%d",
			hits0, hits1, misses0, misses1)
	}
	// The cached mask still applies to the fresh data: the new Acme
	// project is within PSA and must be delivered.
	if !strings.Contains(renderResult(res), "zz-99") {
		t.Fatalf("new permitted row missing from cached-mask answer:\n%s", renderResult(res))
	}

	if _, err := admin.Exec(`delete from PROJECT where PROJECT.NUMBER = zz-99`); err != nil {
		t.Fatal(err)
	}
	res, err = brown.Exec(workload.Example1Query)
	if err != nil {
		t.Fatal(err)
	}
	hits2, misses2, _ := e.MaskCacheStats()
	if misses2 != misses1 || hits2 != hits1+1 {
		t.Fatalf("delete invalidated the cache: hits %d→%d, misses %d→%d",
			hits1, hits2, misses1, misses2)
	}
	if strings.Contains(renderResult(res), "zz-99") {
		t.Fatal("deleted row still delivered")
	}
}

// TestMaskCacheNoStaleMaskUnderConcurrency hammers one query from many
// reader goroutines while the admin revokes the grant, then verifies the
// very next read is denied — the revoke must invalidate the cached mask
// no matter how hot it is. Run with -race.
func TestMaskCacheNoStaleMaskUnderConcurrency(t *testing.T) {
	e := paperEngine(t)
	admin := e.NewSession("admin", true)

	const readers = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := e.NewSession("Brown", false)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := s.Exec(workload.Example1Query); err != nil {
					t.Errorf("reader: %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		if _, err := admin.Exec(`revoke PSA from Brown`); err != nil {
			t.Fatal(err)
		}
		res, err := e.NewSession("Brown", false).Exec(workload.Example1Query)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Decision.Denied {
			t.Fatalf("iteration %d: stale mask after revoke delivered %d rows", i, res.Relation.Len())
		}
		if _, err := admin.Exec(`permit PSA to Brown`); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
