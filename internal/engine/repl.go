// The engine's replication surface: what a primary hands to followers
// (a consistent snapshot, or the WAL tail past a follower's position)
// and what a replica does with a received snapshot (swap it in under
// the engine lock and persist it as its own generation).
//
// Authorization needs none of this to be special-cased: Motro's model
// makes the masked answer a pure function of the meta-database (views,
// COMPARISON, PERMISSION) and the query, and the meta-relations are
// ordinary state rebuilt from the same statement stream — so a replica
// that has applied the same statement prefix enforces exactly the same
// masking as the primary, with no central enforcement point.
package engine

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"authdb/internal/core"
	"authdb/internal/faultfs"
	"authdb/internal/wal"
)

// ReplSnapshot renders a consistent snapshot of the engine's state (the
// flat file layout loadState reads) together with the LSN it embodies
// and the committed generation number. It pins the head version — no
// engine lock, no disk round trip, and no race with a concurrent
// checkpoint rotating the on-disk generation: the version's files and
// LSN are coherent by construction, and the generation number is only
// forwarded to followers as handshake information.
func (e *Engine) ReplSnapshot() (files map[string][]byte, lsn, gen uint64, err error) {
	v := e.headVersion()
	files, err = v.snapshotFiles()
	if err != nil {
		return nil, 0, 0, err
	}
	return files, v.lsn, e.snapGen.Load(), nil
}

// WALTail returns the durable statements with LSN > from, read from the
// current generation's on-disk WAL. ok reports whether the tail
// suffices: false means the follower's position predates the committed
// snapshot (or the engine is in-memory, or the log rotated repeatedly
// mid-read) and the follower needs a full snapshot instead.
//
// Callers that want a gap-free stream must subscribe to the commit feed
// BEFORE calling WALTail: every statement is either durable before the
// subscription (and therefore in the WAL read here) or published to the
// subscription after it — the two sources overlap rather than gap, and
// the reader dedupes by LSN.
func (e *Engine) WALTail(from uint64) (tail []Commit, ok bool, err error) {
	for attempt := 0; attempt < 3; attempt++ {
		e.mu.RLock()
		if e.dur == nil {
			e.mu.RUnlock()
			return nil, false, nil
		}
		dfs, dir, gen := e.dur.fs, e.dur.dir, e.dur.gen
		base := e.snapBase.Load()
		e.mu.RUnlock()
		if from < base {
			return nil, false, nil
		}

		// Read without any engine lock: the WAL file only grows, and the
		// flusher may append concurrently — a record torn by the race
		// CRC-fails and terminates the prefix, which is fine because the
		// commit feed covers everything past it.
		var cs []Commit
		n := uint64(0)
		if _, err := wal.Replay(dfs, filepath.Join(dir, walName(gen)), func(_ int, stmt string) error {
			n++
			if base+n > from {
				cs = append(cs, Commit{LSN: base + n, Stmt: stmt})
			}
			return nil
		}); err != nil {
			return nil, false, err
		}

		// A checkpoint during the read would have rotated the log under
		// us (the read may have seen the doomed file, or nothing); only a
		// generation that held still vouches for the tail.
		e.mu.RLock()
		same := e.dur != nil && e.dur.gen == gen
		e.mu.RUnlock()
		if same {
			return cs, true, nil
		}
	}
	return nil, false, nil
}

// ResetFromSnapshot replaces the engine's entire state with the given
// snapshot files (the layout ReplSnapshot produces) embodying lsn. The
// swap happens under the engine lock, transparent to concurrent
// sessions; durable engines immediately checkpoint the new state as
// their own generation so a restart resumes from it. This is the
// replica's bootstrap path.
func (e *Engine) ResetFromSnapshot(files map[string][]byte, lsn uint64) error {
	tmp, err := loadState(mapFS(files), ".", e.opt)
	if err != nil {
		return fmt.Errorf("loading replication snapshot: %w", err)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.durCheck(); err != nil {
		return err
	}
	e.wsch, e.vrels, e.wstore = tmp.wsch, tmp.vrels, tmp.wstore
	if e.masks.Load() != nil {
		// The store's generation counters restarted with the new store;
		// stale cache entries keyed on the old counters must not survive.
		e.masks.Store(core.NewMaskCache(0))
	}
	e.lsn.Store(lsn)
	e.publishLocked()
	if e.pstore != nil {
		// The page store mirrors state that was just replaced wholesale;
		// the checkpoint below rebuilds it from the adopted head.
		e.pstore.MarkRebuild()
	}
	if e.dur != nil {
		if err := e.checkpointLocked(e.dur.fs, e.dur.dir, e.dur.gen); err != nil {
			return fmt.Errorf("persisting replication snapshot: %w", err)
		}
	} else {
		e.durableLSN.Store(lsn)
	}
	return nil
}

// mapFS serves a snapshot's file map through the faultfs.FS interface;
// only the read surface works, which is all loadState touches. Paths
// are the map's slash-separated keys, optionally prefixed "./".
type mapFS map[string][]byte

func (m mapFS) ReadFile(name string) ([]byte, error) {
	key := filepath.ToSlash(filepath.Clean(name))
	if b, ok := m[key]; ok {
		return append([]byte(nil), b...), nil
	}
	return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
}

func (m mapFS) Open(name string) (faultfs.File, error) {
	return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrInvalid}
}

func (m mapFS) Create(name string) (faultfs.File, error) {
	return nil, &os.PathError{Op: "create", Path: name, Err: os.ErrInvalid}
}

func (m mapFS) OpenFile(name string) (faultfs.RandomFile, error) {
	return nil, &os.PathError{Op: "openfile", Path: name, Err: os.ErrInvalid}
}

func (m mapFS) MkdirAll(path string, perm os.FileMode) error { return os.ErrInvalid }
func (m mapFS) Rename(oldpath, newpath string) error         { return os.ErrInvalid }
func (m mapFS) Remove(name string) error                     { return os.ErrInvalid }
func (m mapFS) RemoveAll(path string) error                  { return os.ErrInvalid }
func (m mapFS) SyncDir(path string) error                    { return os.ErrInvalid }

func (m mapFS) ReadDir(name string) ([]fs.DirEntry, error) {
	return nil, &os.PathError{Op: "readdir", Path: name, Err: os.ErrInvalid}
}

func (m mapFS) Stat(name string) (fs.FileInfo, error) {
	return nil, &os.PathError{Op: "stat", Path: name, Err: os.ErrNotExist}
}
