package engine

import (
	"fmt"
	"sync/atomic"
	"testing"

	"authdb/internal/core"
)

// benchDurableInserts measures concurrent durable inserts, the workload
// group commit exists for: b.RunParallel drives GOMAXPROCS writers, so
// serial mode pays one fsync per insert while group commit shares one
// across whatever staged during the previous sync.
func benchDurableInserts(b *testing.B, group bool) {
	e, err := OpenDurable(b.TempDir(), core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	admin := e.NewSession("admin", true)
	if _, err := admin.ExecScript("relation WRITES (K, V) key (K);\n"); err != nil {
		b.Fatal(err)
	}
	e.SetGroupCommit(group)
	var seq atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		sess := e.NewSession("admin", true)
		for pb.Next() {
			k := seq.Add(1)
			if _, err := sess.Exec(fmt.Sprintf("insert into WRITES values (w%d, v)", k)); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func BenchmarkDurableInsertSerial(b *testing.B) { benchDurableInserts(b, false) }
func BenchmarkDurableInsertGroup(b *testing.B)  { benchDurableInserts(b, true) }
