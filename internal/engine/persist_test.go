package engine_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"authdb/internal/core"
	"authdb/internal/engine"
	"authdb/internal/workload"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	e := paperEngine(t)
	dir := t.TempDir()
	if err := e.Save(dir); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"schema.authdb", "views.authdb",
		filepath.Join("data", "EMPLOYEE.csv"), filepath.Join("data", "PROJECT.csv")} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("missing %s: %v", f, err)
		}
	}
	back, err := engine.Load(dir, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Data round-trips.
	for _, rel := range []string{"EMPLOYEE", "PROJECT", "ASSIGNMENT"} {
		a, err := e.Relation(rel)
		if err != nil {
			t.Fatal(err)
		}
		b, err := back.Relation(rel)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Fatalf("%s differs after round trip", rel)
		}
	}
	// Views and permits round-trip: Klein's Example 2 behaves the same.
	res, err := back.NewSession("Klein", false).Exec(workload.Example2Query)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Len() != 1 || !res.Relation.Tuples()[0][1].IsNull() {
		t.Fatalf("restored engine answers differently:\n%s", res.Relation)
	}
	if len(res.Permits) != 1 || res.Permits[0].String() != "permit (NAME)" {
		t.Fatalf("restored permits = %v", res.Permits)
	}
}

func TestSaveLoadDisjunctiveView(t *testing.T) {
	e := engine.New(core.DefaultOptions())
	admin := e.NewSession("admin", true)
	if _, err := admin.ExecScript(`
		relation P (N, S, B) key (N);
		insert into P values (1, Acme, 10);
		insert into P values (2, Apex, 99);
		view V (P.N, P.S, P.B) where P.S = Acme or P.B >= 50;
		permit V to u;
	`); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := e.Save(dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "views.authdb"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "or P.B >= 50") {
		t.Fatalf("disjunct lost in serialization:\n%s", data)
	}
	back, err := engine.Load(dir, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := back.NewSession("u", false).Exec(`retrieve (P.N, P.S, P.B)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Len() != 2 {
		t.Fatalf("restored disjunctive view delivers:\n%s", res.Relation)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := engine.Load(t.TempDir(), core.DefaultOptions()); err == nil {
		t.Fatal("loading an empty directory must fail")
	}
	// Corrupt CSV arity.
	e := paperEngine(t)
	dir := t.TempDir()
	if err := e.Save(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "data", "EMPLOYEE.csv"),
		[]byte("NAME,TITLE\nJones,manager\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Load(dir, core.DefaultOptions()); err == nil {
		t.Fatal("column mismatch must fail")
	}
}
