package engine_test

import (
	"strings"
	"testing"

	"authdb/internal/core"
	"authdb/internal/engine"
	"authdb/internal/parser"
	"authdb/internal/relation"
	"authdb/internal/workload"
)

func paperEngine(t *testing.T) *engine.Engine {
	t.Helper()
	e := engine.New(core.DefaultOptions())
	admin := e.NewSession("admin", true)
	if _, err := admin.ExecScript(workload.PaperScript); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestAdminRetrieveUnmasked(t *testing.T) {
	e := paperEngine(t)
	res, err := e.NewSession("dba", true).Exec(`retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Len() != 3 {
		t.Fatalf("rows = %d", res.Relation.Len())
	}
}

func TestUserRetrieveMasked(t *testing.T) {
	e := paperEngine(t)
	res, err := e.NewSession("Klein", false).Exec(workload.Example2Query)
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision == nil || res.Decision.FullyAuthorized {
		t.Fatal("expected a partial decision")
	}
	if len(res.Permits) == 0 {
		t.Fatal("permits missing")
	}
}

func TestEngineRelationSnapshot(t *testing.T) {
	e := paperEngine(t)
	r, err := e.Relation("EMPLOYEE")
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the snapshot must not affect the engine.
	r.Delete(func(relation.Tuple) bool { return true })
	r2, _ := e.Relation("EMPLOYEE")
	if r2.Len() != 3 {
		t.Fatal("snapshot shares state")
	}
	if _, err := e.Relation("NOPE"); err == nil {
		t.Fatal("unknown relation accepted")
	}
}

func TestInsertArityAndDuplicates(t *testing.T) {
	e := paperEngine(t)
	admin := e.NewSession("admin", true)
	if _, err := admin.Exec(`insert into EMPLOYEE values (OnlyTwo, fields)`); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	res, err := admin.Exec(`insert into EMPLOYEE values (Jones, manager, 26000)`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "duplicate") {
		t.Fatalf("duplicate insert text: %q", res.Text)
	}
}

func TestDeleteWithPredicate(t *testing.T) {
	e := paperEngine(t)
	admin := e.NewSession("admin", true)
	res, err := admin.Exec(`delete from ASSIGNMENT where P_NO = vg-13`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "deleted 2") {
		t.Fatalf("delete text: %q", res.Text)
	}
	if _, err := admin.Exec(`delete from ASSIGNMENT where PROJECT.NUMBER = vg-13`); err == nil {
		t.Fatal("delete referencing another relation accepted")
	}
}

func TestUpdateAuthorizationJoinWitness(t *testing.T) {
	// ELP covers every attribute of ASSIGNMENT (E_NAME and P_NO are both
	// starred); Klein may insert assignments only when the joined
	// EMPLOYEE and PROJECT rows exist and the budget clears 250,000.
	e := paperEngine(t)
	klein := e.NewSession("Klein", false)
	// Brown (an employee) onto sv-72 (450,000): within ELP.
	if _, err := klein.Exec(`insert into ASSIGNMENT values (Smith, sv-72)`); err != nil {
		t.Fatalf("insert within ELP failed: %v", err)
	}
	// vg-13 has budget 150,000 < 250,000: outside ELP.
	if _, err := klein.Exec(`insert into ASSIGNMENT values (Jones, vg-13)`); err == nil {
		t.Fatal("insert outside ELP's budget bound accepted")
	}
	// A nonexistent employee fails the join witness.
	if _, err := klein.Exec(`insert into ASSIGNMENT values (Nobody, sv-72)`); err == nil {
		t.Fatal("insert with no joining EMPLOYEE accepted")
	}
	// EMPLOYEE has an unstarred SALARY in ELP: no full coverage, so
	// employee rows are not insertable by Klein.
	if _, err := klein.Exec(`insert into EMPLOYEE values (New, clerk, 1000)`); err == nil {
		t.Fatal("insert into partially covered EMPLOYEE accepted")
	}
	// Deletes obey the same coverage.
	if _, err := klein.Exec(`delete from ASSIGNMENT where E_NAME = Smith and P_NO = sv-72`); err != nil {
		t.Fatalf("delete within ELP failed: %v", err)
	}
	if _, err := klein.Exec(`delete from ASSIGNMENT where P_NO = vg-13`); err == nil {
		t.Fatal("delete outside ELP accepted")
	}
}

func TestSymbolicCmpGuardsUpdates(t *testing.T) {
	e := engine.New(core.DefaultOptions())
	admin := e.NewSession("admin", true)
	if _, err := admin.ExecScript(`
		relation T (A, B) key (A);
		view LT (T.A, T.B) where T.A < T.B;
		permit LT to u;
	`); err != nil {
		t.Fatal(err)
	}
	u := e.NewSession("u", false)
	if _, err := u.Exec(`insert into T values (1, 2)`); err != nil {
		t.Fatalf("insert satisfying A < B failed: %v", err)
	}
	if _, err := u.Exec(`insert into T values (5, 2)`); err == nil {
		t.Fatal("insert violating A < B accepted")
	}
}

func TestExecStmtUnknown(t *testing.T) {
	e := paperEngine(t)
	s := e.NewSession("admin", true)
	if _, err := s.Exec(`this is not a statement`); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := s.ExecStmt(parser.Show{What: "nonsense"}); err == nil {
		t.Fatal("unknown show target accepted")
	}
}

func TestExecScriptStopsAtError(t *testing.T) {
	e := engine.New(core.DefaultOptions())
	s := e.NewSession("admin", true)
	rs, err := s.ExecScript(`
		relation R (A);
		insert into NOPE values (1);
		relation S (B);
	`)
	if err == nil {
		t.Fatal("script error swallowed")
	}
	if len(rs) != 1 {
		t.Fatalf("results before error = %d, want 1", len(rs))
	}
	if e.Schema().Lookup("S") != nil {
		t.Fatal("statement after the error executed")
	}
}

func TestOptionsAccessor(t *testing.T) {
	opt := core.DefaultOptions()
	opt.SelfJoins = false
	e := engine.New(opt)
	if e.Options().SelfJoins {
		t.Fatal("options not retained")
	}
	if e.Store() == nil || e.Schema() == nil {
		t.Fatal("accessors nil")
	}
}
