package engine_test

import (
	"strings"
	"testing"
)

func TestShowVariants(t *testing.T) {
	e := paperEngine(t)
	admin := e.NewSession("admin", true)
	cases := []struct {
		stmt string
		want []string
	}{
		{`show relations`, []string{"EMPLOYEE = (NAME, TITLE, SALARY)", "PROJECT = (NUMBER, SPONSOR, BUDGET)"}},
		{`show views`, []string{"view SAE", "view ELP", "view EST", "view PSA"}},
		{`show view ELP`, []string{"PROJECT.BUDGET >= 250000", "in EMPLOYEE", "in ASSIGNMENT"}},
		{`show permissions`, []string{"Brown", "Klein", "SAE", "ELP"}},
		{`show meta`, []string{"EMPLOYEE'", "COMPARISON", "PERMISSION", "x3"}},
	}
	for _, c := range cases {
		res, err := admin.Exec(c.stmt)
		if err != nil {
			t.Fatalf("%s: %v", c.stmt, err)
		}
		for _, want := range c.want {
			if !strings.Contains(res.Text, want) {
				t.Fatalf("%s output misses %q:\n%s", c.stmt, want, res.Text)
			}
		}
	}
	if _, err := admin.Exec(`show view NOPE`); err == nil {
		t.Fatal("show of unknown view accepted")
	}
	if _, err := admin.Exec(`show bananas`); err == nil {
		t.Fatal("unknown show target accepted")
	}
	// Users may inspect views and permissions, but not the meta-relations.
	user := e.NewSession("Brown", false)
	if _, err := user.Exec(`show views`); err != nil {
		t.Fatal(err)
	}
	if _, err := user.Exec(`show meta`); err == nil {
		t.Fatal("show meta must require admin")
	}
}

func TestDropViewAndRevokeAtEngine(t *testing.T) {
	e := paperEngine(t)
	admin := e.NewSession("admin", true)
	if _, err := admin.Exec(`revoke PSA from Brown`); err != nil {
		t.Fatal(err)
	}
	if _, err := admin.Exec(`revoke PSA from Brown`); err == nil {
		t.Fatal("double revoke accepted")
	}
	if _, err := admin.Exec(`drop view PSA`); err != nil {
		t.Fatal(err)
	}
	if _, err := admin.Exec(`drop view PSA`); err == nil {
		t.Fatal("double drop accepted")
	}
	if _, err := admin.Exec(`permit PSA to Brown`); err == nil {
		t.Fatal("permit on dropped view accepted")
	}
	// Non-admin paths.
	user := e.NewSession("Brown", false)
	for _, stmt := range []string{`drop view SAE`, `revoke SAE from Brown`, `permit SAE to Brown`,
		`view W (EMPLOYEE.NAME)`, `relation Z (A)`} {
		if _, err := user.Exec(stmt); err == nil {
			t.Fatalf("%q must require admin", stmt)
		}
	}
	if s := user.User(); s != "Brown" {
		t.Fatalf("User() = %q", s)
	}
}

func TestCreateRelationErrors(t *testing.T) {
	e := paperEngine(t)
	admin := e.NewSession("admin", true)
	if _, err := admin.Exec(`relation EMPLOYEE (X)`); err == nil {
		t.Fatal("duplicate relation accepted")
	}
	if _, err := admin.Exec(`relation BAD (A, A)`); err == nil {
		t.Fatal("duplicate attribute accepted")
	}
	if _, err := admin.Exec(`relation BAD2 (A) key (B)`); err == nil {
		t.Fatal("foreign key attr accepted")
	}
	if _, err := admin.Exec(`view BADVIEW (NOPE.X)`); err == nil {
		t.Fatal("view over unknown relation accepted")
	}
	if _, err := admin.Exec(`permit NOPE to u`); err == nil {
		t.Fatal("permit on unknown view accepted")
	}
}
