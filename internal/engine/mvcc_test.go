package engine

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"authdb/internal/core"
	"authdb/internal/faultfs"
)

// The MVCC suite: lock-freedom of reads, version-exactness of commits,
// and the snapshot-isolation differential under permit/revoke churn.
// These tests live in the engine package because they assert on the
// lock and the head pointer directly.

// renderAnswer canonically renders a retrieve outcome (including a
// masked one) for byte-level comparison across engines.
func renderAnswer(res *Result, err error) string {
	if err != nil {
		return "ERR " + err.Error()
	}
	var b strings.Builder
	b.WriteString(strings.Join(res.Relation.Attrs, ","))
	b.WriteByte('\n')
	for _, t := range res.Relation.Tuples() {
		for _, v := range t {
			b.WriteString(v.String())
			b.WriteByte('|')
		}
		b.WriteByte('\n')
	}
	for _, p := range res.Permits {
		b.WriteString(p.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// mvccSetup is the fixture the MVCC tests share: one relation, a view
// over it, and the permit the churn writer toggles.
var mvccSetup = []string{
	`relation R (K, V) key (K)`,
	`insert into R values (1, a)`,
	`insert into R values (2, b)`,
	`insert into R values (3, c)`,
	`view VR (R.K, R.V) where R.K >= 1`,
	`permit VR to u`,
}

func mvccEngine(t *testing.T) *Engine {
	t.Helper()
	e := New(core.DefaultOptions())
	admin := e.NewSession("admin", true)
	for _, stmt := range mvccSetup {
		if _, err := admin.Exec(stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}
	return e
}

const mvccQuery = `retrieve (R.K, R.V) where R.K >= 1`

// TestRetrieveRunsWhileWriterLockHeld proves a retrieve takes no engine
// lock: it must complete while the writer lock is held exclusively the
// whole time.
func TestRetrieveRunsWhileWriterLockHeld(t *testing.T) {
	e := mvccEngine(t)
	e.mu.Lock() // an in-flight writer owns the statement lock
	defer e.mu.Unlock()

	type out struct {
		res *Result
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := e.NewSession("u", false).Exec(mvccQuery)
		done <- out{res, err}
	}()
	select {
	case o := <-done:
		if o.err != nil {
			t.Fatalf("retrieve under held writer lock: %v", o.err)
		}
		if o.res.Relation.Len() != 3 {
			t.Fatalf("retrieve delivered %d tuples, want 3", o.res.Relation.Len())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("retrieve blocked on the writer lock")
	}
}

// TestWritersCommitWhileReaderPinned proves the converse: a reader
// holding a pinned version (what any in-flight retrieve holds) cannot
// delay commits, and the pinned snapshot stays exactly what it was.
func TestWritersCommitWhileReaderPinned(t *testing.T) {
	e := mvccEngine(t)
	v := e.headVersion() // the long-running reader's pin
	before, err := v.snapshotFiles()
	if err != nil {
		t.Fatal(err)
	}

	admin := e.NewSession("admin", true)
	for i := 10; i < 30; i++ {
		start := time.Now()
		if _, err := admin.Exec(fmt.Sprintf(`insert into R values (%d, x%d)`, i, i)); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d > 5*time.Second {
			t.Fatalf("commit took %v with a reader pinned", d)
		}
	}

	after, err := v.snapshotFiles()
	if err != nil {
		t.Fatal(err)
	}
	for p := range before {
		if string(before[p]) != string(after[p]) {
			t.Fatalf("pinned version's %s changed under concurrent commits", p)
		}
	}
	if head := e.headVersion(); head == v || head.rels["R"].Len() != 23 {
		t.Fatal("commits did not advance the head past the pinned version")
	}
}

// TestReaderSeesExactCommittedVersion checks the read-your-writes edge:
// a retrieve issued after commit N reports AtLSN >= N and contains the
// committed data — the swap is the commit point, there is no window
// where an acknowledged write is invisible.
func TestReaderSeesExactCommittedVersion(t *testing.T) {
	e := mvccEngine(t)
	admin := e.NewSession("admin", true)
	for i := 0; i < 20; i++ {
		if _, err := admin.Exec(fmt.Sprintf(`insert into R values (%d, y%d)`, 100+i, i)); err != nil {
			t.Fatal(err)
		}
		n := e.lsn.Load()
		res, err := admin.Exec(mvccQuery)
		if err != nil {
			t.Fatal(err)
		}
		if res.AtLSN < n {
			t.Fatalf("retrieve after commit %d pinned version %d", n, res.AtLSN)
		}
		if want := 3 + i + 1; res.Relation.Len() != want {
			t.Fatalf("retrieve after commit %d delivered %d tuples, want %d", n, res.Relation.Len(), want)
		}
		if seq, lsn := e.DBVersion(); lsn != n {
			t.Fatalf("head version (seq %d) embodies LSN %d, want %d", seq, lsn, n)
		}
	}
}

// TestReaderSeesCommittedVersionGroupCommit repeats the exactness check
// on a durable engine with group commit on: Exec acknowledges only
// after the shared fsync, by which point the version must be published.
func TestReaderSeesCommittedVersionGroupCommit(t *testing.T) {
	e, err := OpenDurable(t.TempDir(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.SetGroupCommit(true)
	admin := e.NewSession("admin", true)
	if _, err := admin.Exec(`relation G (K) key (K)`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := admin.Exec(fmt.Sprintf(`insert into G values (%d)`, i)); err != nil {
			t.Fatal(err)
		}
		n := e.lsn.Load()
		res, err := admin.Exec(`retrieve (G.K) where G.K >= 0`)
		if err != nil {
			t.Fatal(err)
		}
		if res.AtLSN < n || res.Relation.Len() != i+1 {
			t.Fatalf("after group commit %d: AtLSN %d, %d tuples (want >=%d, %d)",
				n, res.AtLSN, res.Relation.Len(), n, i+1)
		}
	}
}

// TestSnapshotIsolationChurn is the engine-level MVCC differential: one
// writer interleaves data inserts with permit/revoke churn while admin
// and masked-user readers retrieve concurrently. Every reader's answer,
// identified by its AtLSN, must be byte-identical to the answer a fresh
// engine gives after serially replaying exactly that statement prefix —
// a mid-churn retrieve reflects one version in full, never a mix.
func TestSnapshotIsolationChurn(t *testing.T) {
	e := mvccEngine(t)
	baseLSN := e.lsn.Load()

	// The single writer's committed statements, in order; statement i
	// (1-based) commits at LSN baseLSN+i.
	var script []string
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		admin := e.NewSession("admin", true)
		key := 1000
		for round := 0; round < 12; round++ {
			for _, stmt := range []string{
				fmt.Sprintf(`insert into R values (%d, w%d)`, key, key),
				`revoke VR from u`,
				fmt.Sprintf(`insert into R values (%d, w%d)`, key+1, key+1),
				`permit VR to u`,
			} {
				if _, err := admin.Exec(stmt); err != nil {
					panic(fmt.Sprintf("%s: %v", stmt, err))
				}
				script = append(script, stmt)
			}
			key += 2
		}
	}()

	type obs struct {
		lsn   uint64
		admin bool
		ans   string
	}
	var mu sync.Mutex
	var seen []obs
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			asAdmin := r%2 == 0
			s := e.NewSession("u", false)
			if asAdmin {
				s = e.NewSession("admin", true)
			}
			for i := 0; i < 15; i++ {
				res, err := s.Exec(mvccQuery)
				rendered := renderAnswer(res, err)
				lsn := uint64(0)
				if err == nil {
					lsn = res.AtLSN
				}
				mu.Lock()
				seen = append(seen, obs{lsn: lsn, admin: asAdmin, ans: rendered})
				mu.Unlock()
			}
		}(r)
	}
	wg.Wait()

	// Serial ground truth: replay each observed prefix into a fresh
	// engine and rerun the retrieve.
	truth := make(map[string]string)
	for _, o := range seen {
		if o.lsn < baseLSN || o.lsn > baseLSN+uint64(len(script)) {
			t.Fatalf("observed AtLSN %d outside the writer's range [%d, %d]",
				o.lsn, baseLSN, baseLSN+uint64(len(script)))
		}
		kind := "user"
		if o.admin {
			kind = "admin"
		}
		ck := fmt.Sprintf("%d/%s", o.lsn, kind)
		want, ok := truth[ck]
		if !ok {
			re := New(core.DefaultOptions())
			radmin := re.NewSession("admin", true)
			for _, stmt := range mvccSetup {
				if _, err := radmin.Exec(stmt); err != nil {
					t.Fatalf("replay setup %s: %v", stmt, err)
				}
			}
			for _, stmt := range script[:o.lsn-baseLSN] {
				if _, err := radmin.Exec(stmt); err != nil {
					t.Fatalf("replay %s: %v", stmt, err)
				}
			}
			rs := re.NewSession("u", false)
			if o.admin {
				rs = radmin
			}
			want = renderAnswer(rs.Exec(mvccQuery))
			truth[ck] = want
		}
		if o.ans != want {
			t.Fatalf("%s reader pinned at LSN %d diverged from serial replay:\ngot:\n%s\nwant:\n%s",
				kind, o.lsn, o.ans, want)
		}
	}
}

// TestMVCCReadWriteStress is the -race soak: concurrent readers (masked
// and admin), a data writer, and a permit churn writer all hammer one
// engine. The race detector proves pinned evaluation shares no mutable
// state with commits; the assertions prove answers are always whole
// versions (cardinality only ever grows with the LSN here, since the
// writer only inserts).
func TestMVCCReadWriteStress(t *testing.T) {
	e := mvccEngine(t)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // data writer
		defer wg.Done()
		admin := e.NewSession("admin", true)
		for i := 0; i < 400; i++ {
			if _, err := admin.Exec(fmt.Sprintf(`insert into R values (%d, s%d)`, 2000+i, i)); err != nil {
				panic(err)
			}
		}
		close(stop)
	}()
	wg.Add(1)
	go func() { // permit churn writer
		defer wg.Done()
		admin := e.NewSession("admin", true)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			stmt := `revoke VR from u`
			if i%2 == 1 {
				stmt = `permit VR to u`
			}
			if _, err := admin.Exec(stmt); err != nil {
				panic(err)
			}
		}
	}()

	errs := make(chan error, 8)
	for r := 0; r < 6; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			s := e.NewSession("u", false)
			if r%2 == 0 {
				s = e.NewSession("admin", true)
			}
			lastLSN, lastLen := uint64(0), -1
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := s.Exec(mvccQuery)
				if err != nil {
					errs <- err
					return
				}
				// Monotone reads per session, and (insert-only data writer)
				// admin cardinality monotone in the LSN.
				if res.AtLSN < lastLSN {
					errs <- fmt.Errorf("AtLSN went backwards: %d after %d", res.AtLSN, lastLSN)
					return
				}
				if r%2 == 0 && res.Relation.Len() < lastLen {
					errs <- fmt.Errorf("admin answer shrank from %d to %d tuples under insert-only writes", lastLen, res.Relation.Len())
					return
				}
				lastLSN, lastLen = res.AtLSN, res.Relation.Len()
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestCrashAroundVersionSwap arms a filesystem fault at every operation
// index across the scenario, and checks both sides of the swap: the
// live engine's published head stays a consistent statement-history
// state at least as new as everything acknowledged (the swap happens
// even when journaling fails, preserving read-your-writes on a broken
// engine), and recovery lands on a durable prefix no older than the
// acknowledged statements.
func TestCrashAroundVersionSwap(t *testing.T) {
	refs := referenceStates(t)
	isPrefixState := func(fp string) int {
		for i := len(refs) - 1; i >= 0; i-- {
			if fp == refs[i] {
				return i
			}
		}
		return -1
	}
	base := t.TempDir()
	for k := 0; ; k++ {
		if k > 10000 {
			t.Fatal("sweep did not terminate; fault never stopped tripping")
		}
		dir := filepath.Join(base, fmt.Sprintf("swap-%d", k))
		fs := faultfs.NewFaulty(faultfs.OS())
		fs.Arm(k)

		e, err := OpenDurableFS(fs, dir, core.DefaultOptions())
		applied := -1
		if err == nil {
			applied = 0
			admin := e.NewSession("admin", true)
			for _, stmt := range durableScenario {
				if _, err := admin.Exec(stmt); err != nil {
					break
				}
				applied++
			}
			// The live head (even of a broken engine) must render a real
			// history state covering every acknowledged statement.
			live := isPrefixState(fingerprint(t, e))
			if live < 0 {
				t.Fatalf("k=%d: live head is not a statement-history state", k)
			}
			if live < applied {
				t.Fatalf("k=%d: live head at state %d is behind %d acknowledged statement(s)", k, live, applied)
			}
			if _, lsn := e.DBVersion(); lsn != e.lsn.Load() {
				t.Fatalf("k=%d: head version LSN %d trails the statement counter %d", k, lsn, e.lsn.Load())
			}
		}
		tripped := fs.Tripped()
		if e != nil {
			e.Close()
		}

		re, err := OpenDurable(dir, core.DefaultOptions())
		if err != nil {
			t.Fatalf("k=%d: recovery failed: %v", k, err)
		}
		got := isPrefixState(fingerprint(t, re))
		if got < 0 {
			t.Fatalf("k=%d: recovered state is not a prefix of the history", k)
		}
		if applied >= 0 && got < applied {
			t.Fatalf("k=%d: recovery lost %d acknowledged statement(s)", k, applied-got)
		}
		re.Close()

		if !tripped {
			break
		}
	}
}
