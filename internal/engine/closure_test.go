package engine_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"authdb/internal/workload"
)

// TestClosureServesAndInvalidates drives the materialized closure
// through the full statement-level invalidation matrix: repeats hit,
// inserts refresh incrementally and surface immediately, deletes
// invalidate the data side (recomputing through the retained mask
// plan), and revoke / permit / view redefinition invalidate the
// definition side — each time byte-identical to a fresh computation.
func TestClosureServesAndInvalidates(t *testing.T) {
	e := paperEngine(t)
	admin := e.NewSession("admin", true)
	brown := e.NewSession("Brown", false)

	first, err := brown.Exec(workload.Example1Query)
	if err != nil {
		t.Fatal(err)
	}
	s0 := e.MaskClosureStats()
	if s0.Misses == 0 || s0.Entries == 0 {
		t.Fatalf("first retrieve should have missed and stored: %+v", s0)
	}
	second, err := brown.Exec(workload.Example1Query)
	if err != nil {
		t.Fatal(err)
	}
	s1 := e.MaskClosureStats()
	if s1.Hits != s0.Hits+1 || s1.Misses != s0.Misses {
		t.Fatalf("repeat: %+v -> %+v; want a pure closure hit", s0, s1)
	}
	if renderResult(first) != renderResult(second) {
		t.Fatal("closure-served answer differs from computed one")
	}
	if first.Decision.Mask != second.Decision.Mask {
		t.Fatal("closure hit did not share the compiled mask")
	}

	// Insert: the entry refreshes by replaying the appended window; the
	// new permitted row must be visible immediately.
	if _, err := admin.Exec(`insert into PROJECT values (zz-99, Acme, 990000)`); err != nil {
		t.Fatal(err)
	}
	res, err := brown.Exec(workload.Example1Query)
	if err != nil {
		t.Fatal(err)
	}
	s2 := e.MaskClosureStats()
	if s2.Refreshes != s1.Refreshes+1 || s2.Hits != s1.Hits+1 {
		t.Fatalf("insert should refresh incrementally: %+v -> %+v", s1, s2)
	}
	if !strings.Contains(renderResult(res), "zz-99") {
		t.Fatalf("inserted row missing from refreshed answer:\n%s", renderResult(res))
	}

	// Delete: unrepairable, so the entry over PROJECT is dropped eagerly
	// at delete time (InvalidateRelation) and the next read recomputes.
	if _, err := admin.Exec(`delete from PROJECT where PROJECT.NUMBER = zz-99`); err != nil {
		t.Fatal(err)
	}
	res, err = brown.Exec(workload.Example1Query)
	if err != nil {
		t.Fatal(err)
	}
	s3 := e.MaskClosureStats()
	if s3.InvalidDelete != s2.InvalidDelete+1 {
		t.Fatalf("delete should drop the entry eagerly: %+v -> %+v", s2, s3)
	}
	if strings.Contains(renderResult(res), "zz-99") {
		t.Fatal("deleted row still delivered")
	}
	if renderResult(res) != renderResult(first) {
		t.Fatal("post-delete answer differs from the original")
	}

	// Revoke: the very next read is denied — no resident staleness.
	if _, err := admin.Exec(`revoke PSA from Brown`); err != nil {
		t.Fatal(err)
	}
	denied, err := brown.Exec(workload.Example1Query)
	if err != nil {
		t.Fatal(err)
	}
	s4 := e.MaskClosureStats()
	if !denied.Decision.Denied {
		t.Fatalf("stale closure served after revoke: %d rows", denied.Relation.Len())
	}
	if s4.InvalidDef != s3.InvalidDef+1 {
		t.Fatalf("revoke should invalidate the definition side: %+v -> %+v", s3, s4)
	}

	// Re-permit restores the original answer byte for byte.
	if _, err := admin.Exec(`permit PSA to Brown`); err != nil {
		t.Fatal(err)
	}
	restored, err := brown.Exec(workload.Example1Query)
	if err != nil {
		t.Fatal(err)
	}
	if renderResult(restored) != renderResult(first) {
		t.Fatal("after re-permit, answer differs from original")
	}
}

// TestClosureConcurrentPinnedReaders hammers closure-served retrieves
// from many reader goroutines while a writer churns both data (inserts
// whose visibility is asserted on the very next read) and definitions
// (revoke/permit cycles whose denial is asserted on the very next
// read). Run with -race: the resident state is shared across every
// pinned reader.
func TestClosureConcurrentPinnedReaders(t *testing.T) {
	e := paperEngine(t)
	admin := e.NewSession("admin", true)

	const readers = 8
	stop := make(chan struct{})
	var wg, ready sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		ready.Add(1)
		go func(i int) {
			defer wg.Done()
			user := "Brown"
			query := workload.Example1Query
			if i%2 == 1 {
				user, query = "Klein", workload.Example2Query
			}
			s := e.NewSession(user, false)
			first := true
			for {
				select {
				case <-stop:
					if first {
						ready.Done()
					}
					return
				default:
				}
				if _, err := s.Exec(query); err != nil {
					t.Errorf("reader %d: %v", i, err)
					if first {
						ready.Done()
					}
					return
				}
				if first {
					first = false
					ready.Done()
				}
			}
		}(i)
	}
	// Every reader has pinned closure state before the churn begins —
	// otherwise a fast writer loop can finish before a single reader is
	// scheduled and the run exercises nothing concurrently.
	ready.Wait()

	brown := e.NewSession("Brown", false)
	rounds := 30
	if testing.Short() {
		rounds = 8
	}
	for i := 0; i < rounds; i++ {
		numA := fmt.Sprintf("cc-%02d-a", i)
		numB := fmt.Sprintf("cc-%02d-b", i)
		if _, err := admin.Exec(`insert into PROJECT values (` + numA + `, Acme, 900000)`); err != nil {
			t.Fatal(err)
		}
		// This read stores (or refreshes) the entry at the new revision...
		res, err := brown.Exec(workload.Example1Query)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(renderResult(res), numA) {
			t.Fatalf("round %d: fresh insert %s invisible through the closure", i, numA)
		}
		// ...so this second append exercises read-your-writes through the
		// incremental refresh path on a resident entry.
		if _, err := admin.Exec(`insert into PROJECT values (` + numB + `, Acme, 910000)`); err != nil {
			t.Fatal(err)
		}
		res, err = brown.Exec(workload.Example1Query)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(renderResult(res), numB) {
			t.Fatalf("round %d: appended row %s invisible after refresh", i, numB)
		}
		// Deletion-driven recompute while the entry is resident: the
		// data side invalidates, the retained plan masks the fresh answer.
		if _, err := admin.Exec(`delete from PROJECT where PROJECT.NUMBER = ` + numB); err != nil {
			t.Fatal(err)
		}
		res, err = brown.Exec(workload.Example1Query)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(renderResult(res), numB) {
			t.Fatalf("round %d: deleted row %s still delivered", i, numB)
		}
		// Immediate denial through the definition path.
		if _, err := admin.Exec(`revoke PSA from Brown`); err != nil {
			t.Fatal(err)
		}
		res, err = brown.Exec(workload.Example1Query)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Decision.Denied {
			t.Fatalf("round %d: stale closure after revoke delivered %d rows", i, res.Relation.Len())
		}
		if _, err := admin.Exec(`permit PSA to Brown`); err != nil {
			t.Fatal(err)
		}
		if _, err := admin.Exec(`delete from PROJECT where PROJECT.NUMBER = ` + numA); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	st := e.MaskClosureStats()
	if st.Hits == 0 || st.Refreshes == 0 || st.InvalidDef == 0 || st.InvalidDelete == 0 {
		t.Fatalf("concurrency run did not exercise all closure paths: %+v", st)
	}
}
