package engine

import (
	"fmt"
	"os"
	"path/filepath"
)

// lockFileName guards a durable directory against two live engines.
// Without it a second OpenDurable of a directory another process still
// holds would take the opening checkpoint, rotate the generation, and
// remove the first engine's open WAL — the first engine keeps
// acknowledging writes into an unlinked inode (a durability hole) and
// WALTail, reading the rotated layout, reports an empty yet "complete"
// log to replication followers, silently stalling them.
const lockFileName = "LOCK"

// acquireDirLock takes an exclusive advisory lock on dir for the
// lifetime of the engine. It deliberately goes through the real OS
// rather than the engine's (possibly fault-injected) filesystem: the
// lock protects live process state, not durable bytes — it must not
// shift the fault-injection operation schedule, and the kernel drops it
// automatically when the holder dies, so crash recovery never has to
// break a stale lock.
func acquireDirLock(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, lockFileName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := flockExclusive(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("database directory %s is locked by another process: %w", dir, err)
	}
	return f, nil
}

// releaseDirLock drops the lock; closing the descriptor releases the
// flock with it.
func releaseDirLock(f *os.File) {
	if f != nil {
		f.Close()
	}
}
