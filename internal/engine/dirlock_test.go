//go:build unix

package engine

import (
	"strings"
	"testing"

	"authdb/internal/core"
)

// TestDirLockExcludesSecondOpen: two live engines on one directory
// would checkpoint and rotate generations under each other, orphaning
// the first engine's open WAL, so the second open must be refused
// outright — and succeed again once the first engine closes.
func TestDirLockExcludesSecondOpen(t *testing.T) {
	dir := t.TempDir()
	e, err := OpenDurable(dir, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if second, err := OpenDurable(dir, core.DefaultOptions()); err == nil {
		second.Close()
		t.Fatal("second OpenDurable succeeded while the first engine is live")
	} else if !strings.Contains(err.Error(), "locked by another process") {
		t.Fatalf("second open failed with %v; want the directory-lock error", err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	back, err := OpenDurable(dir, core.DefaultOptions())
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	// Double Close stays safe: the lock is released exactly once.
	if err := back.Close(); err != nil {
		t.Fatal(err)
	}
	if err := back.Close(); err != nil {
		t.Fatal(err)
	}
}
