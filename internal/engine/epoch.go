// Fencing epochs: the failover counter that keeps a resurrected
// ex-primary from silently diverging the fleet.
//
// An epoch is bumped exactly once per promotion, and every bump starts
// at the promoting node's LSN. The full (epoch, start-LSN) history —
// not just the current epoch — is persisted and replicated, because a
// follower can come back after missing several promotions: locating
// where its history forked from the cluster's requires the start LSN
// of the first epoch it never adopted, which may be far below the
// current epoch's start. The history is tiny (one entry per failover
// over the cluster's lifetime), so it travels whole in the replication
// handshake and lives as one small EPOCH file per snapshot generation.
//
// An epoch change always forces a checkpoint, so a WAL segment never
// spans epochs and the WAL record format needs no epoch column: every
// record in wal-NNNNNN.log belongs to the epoch its generation's EPOCH
// file ends with.
package engine

import (
	"fmt"
	"path/filepath"
	"strings"

	"authdb/internal/faultfs"
	"authdb/internal/wal"
)

// EpochEntry is one step of the fencing-epoch history: the epoch and
// the LSN at which it began (the promoting node's position at
// promotion).
type EpochEntry struct {
	Epoch    uint64
	StartLSN uint64
}

// epochName is the snapshot file recording the epoch history, one
// "epoch startLSN" line per entry. Like LSN it lives only inside
// snapshot generations (covered by the MANIFEST), never in the flat
// Save layout.
const epochName = "EPOCH"

// Epoch returns the engine's current fencing epoch (1 for an engine
// that has never seen a promotion).
func (e *Engine) Epoch() uint64 { return e.epoch.Load() }

// EpochHistory returns a copy of the (epoch, start-LSN) history, oldest
// first. The last entry is the current epoch.
func (e *Engine) EpochHistory() []EpochEntry {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return append([]EpochEntry(nil), e.epochHist...)
}

// ForkLSN locates where a node still on staleEpoch forked from this
// engine's history: the start LSN of the first epoch the stale node
// never adopted. Statements the stale node applied past the fork exist
// in no current history and must be quarantined. ok is false when
// staleEpoch is not actually stale (it is the current epoch or higher).
func (e *Engine) ForkLSN(staleEpoch uint64) (fork uint64, ok bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	for _, ent := range e.epochHist {
		if ent.Epoch > staleEpoch {
			return ent.StartLSN, true
		}
	}
	return 0, false
}

// BumpEpoch starts the next epoch at the engine's current LSN — the
// promotion step that fences every lower-epoch primary. The new history
// is checkpointed before the bump is acknowledged (durable engines), so
// a node that told the fleet "epoch n+1 exists" can never forget it.
func (e *Engine) BumpEpoch() (uint64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.durCheck(); err != nil {
		return 0, err
	}
	next := e.epoch.Load() + 1
	e.epochHist = append(e.epochHist, EpochEntry{Epoch: next, StartLSN: e.lsn.Load()})
	e.epoch.Store(next)
	if e.dur != nil {
		if err := e.checkpointLocked(e.dur.fs, e.dur.dir, e.dur.gen); err != nil {
			e.epochHist = e.epochHist[:len(e.epochHist)-1]
			e.epoch.Store(next - 1)
			return 0, fmt.Errorf("persisting epoch %d: %w", next, err)
		}
	}
	return next, nil
}

// AdoptEpochHistory replaces the engine's history with the primary's —
// the follower half of a handshake. The new history must be well-formed
// and must not move the engine backwards; adoption checkpoints on
// durable engines so the follower can never un-adopt after a restart.
func (e *Engine) AdoptEpochHistory(hist []EpochEntry) error {
	if err := validEpochHist(hist); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.durCheck(); err != nil {
		return err
	}
	last := hist[len(hist)-1].Epoch
	if last < e.epoch.Load() {
		return fmt.Errorf("adopting epoch history ending at %d would regress from epoch %d", last, e.epoch.Load())
	}
	if len(hist) == len(e.epochHist) {
		same := true
		for i := range hist {
			if hist[i] != e.epochHist[i] {
				same = false
				break
			}
		}
		if same {
			return nil // re-adopting the current history: no checkpoint churn
		}
	}
	prevHist, prevEpoch := e.epochHist, e.epoch.Load()
	e.epochHist = append([]EpochEntry(nil), hist...)
	e.epoch.Store(last)
	if e.dur != nil {
		if err := e.checkpointLocked(e.dur.fs, e.dur.dir, e.dur.gen); err != nil {
			e.epochHist = prevHist
			e.epoch.Store(prevEpoch)
			return fmt.Errorf("persisting adopted epoch %d: %w", last, err)
		}
	}
	return nil
}

// validEpochHist checks shape: non-empty, epochs strictly increasing,
// start LSNs non-decreasing.
func validEpochHist(hist []EpochEntry) error {
	if len(hist) == 0 {
		return fmt.Errorf("empty epoch history")
	}
	for i := 1; i < len(hist); i++ {
		if hist[i].Epoch <= hist[i-1].Epoch || hist[i].StartLSN < hist[i-1].StartLSN {
			return fmt.Errorf("malformed epoch history: entry %d (%d@%d) after (%d@%d)",
				i, hist[i].Epoch, hist[i].StartLSN, hist[i-1].Epoch, hist[i-1].StartLSN)
		}
	}
	return nil
}

// SetRoleReadOnly fences (or unfences) the whole engine: with the role
// read-only, every session's mutating statements fail with ErrReadOnly
// regardless of when the session was opened — demotion must stop
// in-flight connections, not just future ones. Applier sessions
// (SetApplier) bypass the fence so a demoted node can still follow the
// new primary.
func (e *Engine) SetRoleReadOnly(on bool) { e.roleReadOnly.Store(on) }

// RoleReadOnly reports whether the engine is role-fenced read-only.
func (e *Engine) RoleReadOnly() bool { return e.roleReadOnly.Load() }

// noteOriginWrite counts one locally originated (non-applier) mutation
// under the current epoch; see OriginWritesByEpoch.
func (e *Engine) noteOriginWrite() {
	ep := e.epoch.Load()
	e.originMu.Lock()
	if e.originEpochWrites == nil {
		e.originEpochWrites = make(map[uint64]uint64)
	}
	e.originEpochWrites[ep]++
	e.originMu.Unlock()
}

// OriginWritesByEpoch returns how many mutations this node itself
// accepted (replication appliers excluded) in each epoch. Two nodes
// both reporting origin writes in the same epoch is split brain — the
// chaos harness's dual-primary check reads exactly this.
func (e *Engine) OriginWritesByEpoch() map[uint64]uint64 {
	e.originMu.Lock()
	defer e.originMu.Unlock()
	out := make(map[uint64]uint64, len(e.originEpochWrites))
	for ep, n := range e.originEpochWrites {
		out[ep] = n
	}
	return out
}

// renderEpochHist serializes the history for the EPOCH snapshot file.
func renderEpochHist(hist []EpochEntry) []byte {
	var b strings.Builder
	for _, ent := range hist {
		fmt.Fprintf(&b, "%d %d\n", ent.Epoch, ent.StartLSN)
	}
	return []byte(b.String())
}

// parseEpochHist parses an EPOCH file; a malformed file is an error (the
// MANIFEST already vouched for the bytes, so damage here means a bug).
func parseEpochHist(data []byte) ([]EpochEntry, error) {
	var hist []EpochEntry
	for _, line := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var ent EpochEntry
		if _, err := fmt.Sscanf(line, "%d %d", &ent.Epoch, &ent.StartLSN); err != nil {
			return nil, fmt.Errorf("malformed EPOCH line %q", line)
		}
		hist = append(hist, ent)
	}
	if err := validEpochHist(hist); err != nil {
		return nil, err
	}
	return hist, nil
}

// readSnapEpoch reads a snapshot generation's EPOCH file; nil means the
// snapshot predates epochs (the default history {1, 0} applies).
func readSnapEpoch(fs faultfs.FS, snapDir string) []EpochEntry {
	data, err := fs.ReadFile(filepath.Join(snapDir, epochName))
	if err != nil {
		return nil
	}
	hist, err := parseEpochHist(data)
	if err != nil {
		return nil
	}
	return hist
}

// QuarantineDiverged preserves every statement this engine applied past
// fork before the caller discards them by installing the new leader's
// snapshot — an acked write is never silently dropped, it is moved
// where an operator can find it. The quarantine lands inside the
// durable directory as diverged-GGGGGG/:
//
//	DIVERGED.log   the WAL-format suffix of statements past fork that
//	               the current generation's log still isolates
//	state/         a full flat-layout dump of the in-memory state, when
//	               the committed snapshot itself already embodies
//	               statements past fork (a restart folded the WAL, so
//	               the suffix alone cannot be isolated)
//	INFO           fork, final LSN, and epoch, for the runbook
//
// Checkpoints reclaim only snap-/wal- names, so quarantines survive
// until an operator removes them. Returns the quarantine directory, or
// "" when the engine holds nothing past fork or has no durable
// directory to preserve into.
func (e *Engine) QuarantineDiverged(fork uint64) (string, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.lsn.Load() <= fork || e.dur == nil {
		return "", nil
	}
	if err := e.durCheck(); err != nil {
		return "", err
	}
	e.drainCommits()
	dfs, dir, gen := e.dur.fs, e.dur.dir, e.dur.gen
	base := e.snapBase.Load()
	qdir := filepath.Join(dir, fmt.Sprintf("diverged-%06d", gen))
	if err := dfs.RemoveAll(qdir); err != nil {
		return "", err
	}
	if err := dfs.MkdirAll(qdir, 0o755); err != nil {
		return "", err
	}

	// The current generation's WAL holds base+1..lsn; copy the part past
	// fork into the quarantine log.
	var stmts []string
	if _, err := wal.Replay(dfs, filepath.Join(dir, walName(gen)), func(i int, stmt string) error {
		if base+uint64(i)+1 > fork {
			stmts = append(stmts, stmt)
		}
		return nil
	}); err != nil {
		return "", err
	}
	if len(stmts) > 0 {
		ql, err := wal.Create(dfs, filepath.Join(qdir, "DIVERGED.log"))
		if err != nil {
			return "", err
		}
		if err := ql.AppendBatch(stmts); err != nil {
			ql.Close()
			return "", err
		}
		if err := ql.Close(); err != nil {
			return "", err
		}
	}

	// Statements fork+1..base are folded into the committed snapshot and
	// cannot be isolated as text; preserve the whole state instead.
	if base > fork {
		if err := dfs.MkdirAll(filepath.Join(qdir, "state", "data"), 0o755); err != nil {
			return "", err
		}
		files, err := e.snapshotFiles()
		if err != nil {
			return "", err
		}
		for _, rel := range sortedPaths(files) {
			if err := writeFileSync(dfs, filepath.Join(qdir, "state", filepath.FromSlash(rel)), files[rel]); err != nil {
				return "", err
			}
		}
	}

	info := fmt.Sprintf("fork %d\nlsn %d\nepoch %d\n", fork, e.lsn.Load(), e.epoch.Load())
	if err := writeFileSync(dfs, filepath.Join(qdir, "INFO"), []byte(info)); err != nil {
		return "", err
	}
	if err := dfs.SyncDir(qdir); err != nil {
		return "", err
	}
	if err := dfs.SyncDir(dir); err != nil {
		return "", err
	}
	e.met.Counter("authdb_repl_diverged_quarantines_total").Inc()
	return qdir, nil
}
