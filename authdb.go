// Package authdb is a relational database engine with view-based access
// authorization by algebraic manipulation of view definitions, after
// Motro, "An Access Authorization Model for Relational Databases Based on
// Algebraic Manipulation of View Definitions" (ICDE 1989).
//
// Permissions are conjunctive views. Users query the actual database, not
// the views; the system runs each query both on the relations and on
// meta-relations holding the view definitions, obtaining an answer and a
// mask. The mask withholds unauthorized values and the user receives
// inferred permit statements describing exactly the portions delivered.
//
// Quick start:
//
//	db := authdb.Open()
//	admin := db.Admin()
//	admin.MustExec(`relation EMPLOYEE (NAME, TITLE, SALARY) key (NAME)`)
//	admin.MustExec(`insert into EMPLOYEE values (Jones, manager, 26000)`)
//	admin.MustExec(`view SAE (EMPLOYEE.NAME, EMPLOYEE.SALARY)`)
//	admin.MustExec(`permit SAE to Brown`)
//	res, err := db.Session("Brown").Exec(
//	    `retrieve (EMPLOYEE.NAME, EMPLOYEE.TITLE, EMPLOYEE.SALARY)`)
//	// res.Table has TITLE masked; res.Permits == ["permit (NAME, SALARY)"]
package authdb

import (
	"context"
	"fmt"
	"strings"
	"time"

	"authdb/internal/core"
	"authdb/internal/engine"
	"authdb/internal/guard"
	"authdb/internal/metrics"
	"authdb/internal/relation"
	"authdb/internal/value"
)

// ErrCanceled reports that a statement's context was canceled or its
// deadline (or the session's Timeout limit) passed before execution
// finished. Test with errors.Is.
var ErrCanceled = guard.ErrCanceled

// ErrBudgetExceeded reports that a statement hit one of the session's
// resource limits (intermediate rows, result rows). Test with errors.Is.
var ErrBudgetExceeded = guard.ErrBudgetExceeded

// Limits bounds one statement's execution; see Session.SetLimits. Zero
// fields mean "no limit" for that dimension.
type Limits struct {
	// MaxIntermediateRows caps the tuples materialized across all
	// operators (products, joins, selections, meta-products) while
	// answering one statement.
	MaxIntermediateRows int64
	// MaxResultRows caps the delivered answer's cardinality.
	MaxResultRows int64
	// Timeout bounds wall-clock execution of one statement; it composes
	// with (never extends) any deadline on the caller's context.
	Timeout time.Duration
	// Parallelism lets the evaluators partition large products, joins,
	// and selections across up to this many workers sharing the
	// statement's budget. 0 and 1 both mean serial execution; results
	// and budget failures are identical either way.
	Parallelism int
}

// DefaultLimits is the budget sessions start with: generous enough for
// ordinary workloads, small enough that a runaway self-product fails
// fast instead of exhausting memory.
func DefaultLimits() Limits {
	g := guard.DefaultLimits()
	return Limits{
		MaxIntermediateRows: g.MaxIntermediateRows,
		MaxResultRows:       g.MaxResultRows,
		Timeout:             g.Timeout,
		Parallelism:         g.Parallelism,
	}
}

// Unlimited disables every per-statement bound.
func Unlimited() Limits { return Limits{} }

func (l Limits) internal() guard.Limits {
	return guard.Limits{
		MaxIntermediateRows: l.MaxIntermediateRows,
		MaxResultRows:       l.MaxResultRows,
		Timeout:             l.Timeout,
		Parallelism:         l.Parallelism,
	}
}

// Options selects the refinements of the paper's §4.2 and the execution
// strategy; see DESIGN.md. DefaultOptions enables everything.
type Options struct {
	// Padding keeps subviews of each product operand alive across
	// projections removing the other operand's attributes.
	Padding bool
	// FourCase enables the clear/keep/discard/conjoin selection
	// refinement; disabled, selection conjoins unconditionally.
	FourCase bool
	// SelfJoins infers merged meta-tuples from lossless key joins of
	// different views over one relation.
	SelfJoins bool
	// Subsume drops mask tuples covered by another mask tuple.
	Subsume bool
	// OptimizedExec answers queries with pushdown and hash joins rather
	// than the naive product–selection–projection order.
	OptimizedExec bool
	// MaskPushdown prunes, before materialization, answer rows the
	// compiled mask provably withholds entirely, by conjoining the
	// mask-derived necessary delivery condition with the query plan.
	// The delivered rows, permit statements, and grant/deny outcomes
	// are unchanged; only wasted intermediate work is avoided.
	MaskPushdown bool
	// ExtendedMasks enables the paper's §6(3) extension: masks may be
	// "expressed with additional attributes", so a view's conditions on
	// columns the query did not request still admit the permitted rows
	// (they are checked against the pre-projection answer) instead of
	// being lost at projection time.
	ExtendedMasks bool
	// MaskClosure keeps materialized per-(user, query) results resident —
	// answer, masked relation, and per-mask-tuple row bitmaps — validated
	// against the definition generations and the scanned relation
	// revisions, and refreshed incrementally under insert-only churn.
	// Answers are byte-identical either way; steady-state retrieves skip
	// both pipelines entirely.
	MaskClosure bool
	// Storage selects the durable backend for OpenDir: "memory"
	// (whole-generation CSV snapshots, all state resident) or "paged"
	// (slotted pages + B+Trees behind an LRU buffer cache, checkpoints
	// flush only dirty pages). Empty defers to the AUTHDB_STORAGE
	// environment variable, then "memory". Answers and the durability
	// protocol are identical either way; a directory written by one
	// backend is converted on open by the other.
	Storage string
	// CachePages bounds the paged backend's buffer cache in 4KiB pages
	// (0 = the 4096-page default); ignored by the memory backend.
	CachePages int
}

// DefaultOptions enables every refinement, the optimized executor,
// mask-predicate pushdown, and the materialized mask closure.
func DefaultOptions() Options {
	return Options{
		Padding: true, FourCase: true, SelfJoins: true, Subsume: true,
		OptimizedExec: true, MaskPushdown: true, MaskClosure: true,
	}
}

func (o Options) internal() core.Options {
	opt := core.DefaultOptions()
	opt.Padding = o.Padding
	opt.FourCase = o.FourCase
	opt.SelfJoins = o.SelfJoins
	opt.Subsume = o.Subsume
	opt.OptimizedExec = o.OptimizedExec
	opt.MaskPushdown = o.MaskPushdown
	opt.ExtendedMasks = o.ExtendedMasks
	opt.MaskClosure = o.MaskClosure
	return opt
}

// DB is a database instance with authorization state.
type DB struct {
	eng *engine.Engine
}

// Open creates an empty database. With no arguments it uses
// DefaultOptions; at most one Options value may be given.
func Open(opts ...Options) *DB {
	o := DefaultOptions()
	if len(opts) > 0 {
		o = opts[0]
	}
	return &DB{eng: engine.New(o.internal())}
}

// Certification is the §1 generalization of the model applied to data
// quality: the full answer plus statements describing the portions whose
// tagged property (e.g. "validated") is guaranteed.
type Certification struct {
	// Table is the full answer — certification never withholds data.
	Table *Table
	// Statements describe the certified portions ("certified (…) where …");
	// empty when everything or nothing is certified.
	Statements []string
	// Full reports the entire answer carries the property.
	Full bool
}

// Certify answers query in full and annotates it with the portions
// possessing the given quality. Tag views with the quality through a
// permit statement, e.g. `permit PSA to validated`.
func (db *DB) Certify(quality, query string) (*Certification, error) {
	c, err := db.eng.Certify(quality, query)
	if err != nil {
		return nil, err
	}
	out := &Certification{Table: tableOf(c.Answer), Full: c.Full}
	for _, s := range c.Statements {
		out.Statements = append(out.Statements, s.String())
	}
	return out, nil
}

// Save writes the database's complete state (schema, data, views,
// permits) into a directory; Load restores it. Each file is written
// atomically, but Save is an export — for a database that survives
// crashes mid-mutation, use OpenDir.
func (db *DB) Save(dir string) error { return db.eng.Save(dir) }

// OpenDir opens (creating if necessary) a durable database directory:
// every mutating statement is journaled to a checksummed write-ahead log
// before the call returns, and opening recovers the last committed
// snapshot plus the log's valid prefix — a crash mid-write loses at most
// the statement being written, never committed ones. Directories written
// by Save are converted on first open. Close the DB to release the log.
func OpenDir(dir string, opts ...Options) (*DB, error) {
	o := DefaultOptions()
	if len(opts) > 0 {
		o = opts[0]
	}
	cfg := engine.StorageConfigFromEnv()
	if o.Storage != "" {
		cfg.Backend = o.Storage
	}
	if o.CachePages > 0 {
		cfg.CachePages = o.CachePages
	}
	eng, err := engine.OpenDurableStorage(dir, o.internal(), cfg)
	if err != nil {
		return nil, err
	}
	return &DB{eng: eng}, nil
}

// Close releases the durable directory's log handle (a no-op for
// in-memory databases). The state stays readable; further mutations on
// a durable database fail.
func (db *DB) Close() error { return db.eng.Close() }

// Checkpoint folds the write-ahead log into a fresh snapshot, bounding
// the next open's recovery time. Only durable databases checkpoint.
func (db *DB) Checkpoint() error { return db.eng.Checkpoint() }

// StorageBackend reports the durable storage backend serving this
// database: "paged" when a page store is attached, else "memory"
// (including purely in-memory databases).
func (db *DB) StorageBackend() string { return db.eng.StorageBackend() }

// Load restores a database saved with Save. With no Options argument it
// uses DefaultOptions.
func Load(dir string, opts ...Options) (*DB, error) {
	o := DefaultOptions()
	if len(opts) > 0 {
		o = opts[0]
	}
	eng, err := engine.Load(dir, o.internal())
	if err != nil {
		return nil, err
	}
	return &DB{eng: eng}, nil
}

// Admin opens an administrator session: it may define relations, load
// data, define views, grant and revoke permits, and reads unmasked.
func (db *DB) Admin() *Session {
	return &Session{s: db.eng.NewSession("admin", true)}
}

// Session opens a session for a (non-administrator) user; retrievals are
// masked by the user's permitted views and updates are checked against
// them.
func (db *DB) Session(user string) *Session {
	return &Session{s: db.eng.NewSession(user, false)}
}

// SessionFor opens a session for user with the given authority; the
// network server uses it so administrator connections keep their own
// principal name.
func (db *DB) SessionFor(user string, admin bool) *Session {
	return &Session{s: db.eng.NewSession(user, admin)}
}

// Metrics exposes the process's operational metrics registry (requests
// by kind, execution latency, masked cells, guard trips, mask-cache and
// WAL activity); the network server registers its connection gauges on
// the same registry and serves it at /metrics.
func (db *DB) Metrics() *metrics.Registry {
	return db.eng.Metrics()
}

// Engine exposes the underlying engine for in-process subsystems (the
// network server's replication hub, the replica applier). Not part of
// the stable embedding surface.
func (db *DB) Engine() *engine.Engine { return db.eng }

// SetGroupCommit switches the durable layer between one-fsync-per-
// statement journaling (off, the default) and group commit (on):
// concurrent writers share one fsync. Results are identical; servers
// turn it on for throughput.
func (db *DB) SetGroupCommit(on bool) { db.eng.SetGroupCommit(on) }

// Session executes statements on behalf of one principal.
type Session struct {
	s *engine.Session
}

// User returns the session's principal.
func (s *Session) User() string { return s.s.User() }

// SetLimits replaces the session's per-statement resource limits
// (sessions start with DefaultLimits). It returns the session for
// chaining. Not safe concurrently with executions on the same session.
func (s *Session) SetLimits(l Limits) *Session {
	s.s.SetLimits(l.internal())
	return s
}

// SetReadOnly makes the session reject mutating statements with
// engine.ErrReadOnly; replicas serve every connection read-only. It
// returns the session for chaining.
func (s *Session) SetReadOnly(on bool) *Session {
	s.s.SetReadOnly(on)
	return s
}

// Cell is one delivered value: a string, an integer, or null (withheld).
type Cell struct {
	v value.Value
}

// IsNull reports whether the value was withheld (or genuinely null).
func (c Cell) IsNull() bool { return c.v.IsNull() }

// Int returns the integer payload and whether the cell holds an integer.
func (c Cell) Int() (int64, bool) { return c.v.AsInt(), c.v.Kind() == value.KindInt }

// Text returns the string payload and whether the cell holds a string.
func (c Cell) Text() (string, bool) { return c.v.AsString(), c.v.Kind() == value.KindString }

// String renders the cell; withheld cells render as "-".
func (c Cell) String() string { return c.v.String() }

// Table is a delivered relation.
type Table struct {
	// Columns holds display names (bare attribute names, numbered on
	// collision).
	Columns []string
	// Rows holds the tuples in canonical order.
	Rows [][]Cell
}

// String renders the table in the paper's figure style.
func (t *Table) String() string {
	var b strings.Builder
	rows := make([][]string, len(t.Rows))
	for i, r := range t.Rows {
		rows[i] = make([]string, len(r))
		for j, c := range r {
			rows[i][j] = c.String()
		}
	}
	relation.RenderTable(&b, "", t.Columns, rows, false)
	return b.String()
}

func tableOf(r *relation.Relation) *Table {
	if r == nil {
		return nil
	}
	t := &Table{Columns: core.DisplayNames(r.Attrs)}
	for _, tp := range r.Sorted() {
		row := make([]Cell, len(tp))
		for j, v := range tp {
			row[j] = Cell{v: v}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Result is the outcome of one statement.
type Result struct {
	// Text carries acknowledgements and show output.
	Text string
	// Table is the delivered relation of a retrieve, masked for user
	// sessions.
	Table *Table
	// Permits are the inferred permit statements accompanying a
	// partially delivered answer (empty on full grants and denials).
	Permits []string
	// FullyAuthorized reports the entire answer was delivered; Denied
	// reports none of it was.
	FullyAuthorized bool
	// Denied reports that no portion of the answer was permitted.
	Denied bool
}

// Render renders the result exactly as the REPL prints it: the text,
// then the table followed by its authorization footer (the outcome line
// or the inferred permit statements). The network server sends the same
// rendering so every front end shows identical output.
func (r *Result) Render() string {
	var b strings.Builder
	if r.Text != "" {
		b.WriteString(r.Text)
		b.WriteByte('\n')
	}
	if r.Table != nil {
		b.WriteString(r.Table.String())
		switch {
		case r.FullyAuthorized:
			b.WriteString("(entire answer delivered)\n")
		case r.Denied:
			b.WriteString("(no portion of the answer is permitted)\n")
		default:
			for _, p := range r.Permits {
				b.WriteString(p)
				b.WriteByte('\n')
			}
		}
	}
	return b.String()
}

func resultOf(r *engine.Result) *Result {
	out := &Result{Text: r.Text, Table: tableOf(r.Relation)}
	for _, p := range r.Permits {
		out.Permits = append(out.Permits, p.String())
	}
	if r.Decision != nil {
		out.FullyAuthorized = r.Decision.FullyAuthorized
		out.Denied = r.Decision.Denied
	} else if r.Relation != nil {
		// Administrator retrieves bypass the authorizer entirely, so no
		// decision accompanies them; the whole answer was delivered.
		out.FullyAuthorized = true
	}
	return out
}

// Exec parses and executes one statement (relation, insert, delete, view,
// permit, revoke, retrieve, show, drop view).
func (s *Session) Exec(stmt string) (*Result, error) {
	return s.ExecContext(context.Background(), stmt)
}

// ExecContext is Exec under a context: cancellation and deadline are
// honored at tuple-batch granularity and surface as ErrCanceled; the
// session's Limits surface as ErrBudgetExceeded.
func (s *Session) ExecContext(ctx context.Context, stmt string) (*Result, error) {
	r, err := s.s.ExecContext(ctx, stmt)
	if err != nil {
		return nil, err
	}
	return resultOf(r), nil
}

// Dispatch executes one line of input: a statement, or a meta-command
// shared by every front end (`\stats`, administrator only, which renders
// the process metrics). The REPL and the network server both route user
// input through Dispatch so they expose one statement surface.
func (s *Session) Dispatch(ctx context.Context, input string) (*Result, error) {
	r, err := s.s.Dispatch(ctx, input)
	if err != nil {
		return nil, err
	}
	return resultOf(r), nil
}

// MustExec is Exec for setup code; it panics on error.
func (s *Session) MustExec(stmt string) *Result {
	r, err := s.Exec(stmt)
	if err != nil {
		panic(fmt.Errorf("authdb: %s: %w", firstLine(stmt), err))
	}
	return r
}

// ExecScript executes a semicolon-separated script, stopping at the first
// error.
func (s *Session) ExecScript(script string) ([]*Result, error) {
	rs, err := s.s.ExecScript(script)
	out := make([]*Result, 0, len(rs))
	for _, r := range rs {
		out = append(out, resultOf(r))
	}
	return out, err
}

// MustExecScript is ExecScript for setup code; it panics on error.
func (s *Session) MustExecScript(script string) []*Result {
	out, err := s.ExecScript(script)
	if err != nil {
		panic(fmt.Errorf("authdb: %w", err))
	}
	return out
}

func firstLine(s string) string {
	s = strings.TrimSpace(s)
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i] + " …"
	}
	return s
}
