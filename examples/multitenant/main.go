// Multitenant: sponsor-scoped access in the style of modern row-level
// security, expressed as the paper's view permissions. Each tenant is
// permitted exactly the projects (and ticket traffic) of their own
// sponsor; every tenant runs the *same* queries against the actual
// relations and the masks carve out their slice.
package main

import (
	"fmt"

	"authdb"
)

func main() {
	opt := authdb.DefaultOptions()
	opt.ExtendedMasks = true // sponsor conditions guard rows even when unrequested
	db := authdb.Open(opt)
	admin := db.Admin()

	admin.MustExecScript(`
		relation PROJECT (NUMBER, SPONSOR, BUDGET) key (NUMBER);
		relation TICKET (ID, P_NO, SEVERITY) key (ID);

		insert into PROJECT values (bq-45, Acme, 300000);
		insert into PROJECT values (bq-46, Acme, 120000);
		insert into PROJECT values (sv-72, Apex, 450000);
		insert into PROJECT values (sv-73, Apex, 90000);
		insert into PROJECT values (vg-13, Summit, 150000);

		insert into TICKET values (1, bq-45, 3);
		insert into TICKET values (2, bq-45, 1);
		insert into TICKET values (3, sv-72, 2);
		insert into TICKET values (4, vg-13, 5);
		insert into TICKET values (5, bq-46, 4);

		view ACME_PROJECTS (PROJECT.NUMBER, PROJECT.SPONSOR, PROJECT.BUDGET)
		  where PROJECT.SPONSOR = Acme;
		view ACME_TICKETS (TICKET.ID, TICKET.P_NO, TICKET.SEVERITY,
		                   PROJECT.NUMBER, PROJECT.SPONSOR)
		  where TICKET.P_NO = PROJECT.NUMBER
		  and PROJECT.SPONSOR = Acme;

		view APEX_PROJECTS (PROJECT.NUMBER, PROJECT.SPONSOR, PROJECT.BUDGET)
		  where PROJECT.SPONSOR = Apex;

		permit ACME_PROJECTS to acme;
		permit ACME_TICKETS to acme;
		permit APEX_PROJECTS to apex;
	`)

	projectQuery := `retrieve (PROJECT.NUMBER, PROJECT.BUDGET)`
	for _, tenant := range []string{"acme", "apex", "summit"} {
		res, err := db.Session(tenant).Exec(projectQuery)
		if err != nil {
			panic(err)
		}
		fmt.Printf("== %s lists all projects ==\n", tenant)
		if res.Denied {
			fmt.Println("  (denied: no permitted view applies)")
		} else {
			fmt.Print(res.Table)
			for _, p := range res.Permits {
				fmt.Println(" ", p)
			}
		}
		fmt.Println()
	}

	// Cross-relation tenancy: tickets joined to projects; only Acme's
	// traffic comes back for the acme tenant.
	fmt.Println("== acme: severe tickets with their project budgets ==")
	res, err := db.Session("acme").Exec(`
		retrieve (TICKET.ID, TICKET.SEVERITY, PROJECT.NUMBER)
		  where TICKET.P_NO = PROJECT.NUMBER
		  and TICKET.SEVERITY >= 3`)
	if err != nil {
		panic(err)
	}
	fmt.Print(res.Table)
	for _, p := range res.Permits {
		fmt.Println(" ", p)
	}

	// Tenants can write inside their slice only.
	fmt.Println()
	acme := db.Session("acme")
	if _, err := acme.Exec(`insert into PROJECT values (bq-47, Acme, 50000)`); err == nil {
		fmt.Println("acme added its own project bq-47")
	}
	if _, err := acme.Exec(`insert into PROJECT values (xx-01, Apex, 50000)`); err != nil {
		fmt.Println("acme may not create Apex projects:", err)
	}
}
