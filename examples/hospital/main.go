// Hospital: row- and column-level masking over patient data.
//
// A researcher is permitted a cohort view (oncology patients' ages and
// diagnoses — no names), while a billing clerk is permitted names and
// balances but no clinical data. Both direct the same query at the actual
// PATIENT relation; each receives the portion their views justify, with
// inferred permit statements explaining the shape.
package main

import (
	"fmt"

	"authdb"
)

func main() {
	// ExtendedMasks (the paper's §6(3) extension) lets COHORT's
	// WARD = oncology condition guard rows even when the query never
	// asks for WARD.
	opt := authdb.DefaultOptions()
	opt.ExtendedMasks = true
	db := authdb.Open(opt)
	admin := db.Admin()

	admin.MustExecScript(`
		relation PATIENT (ID, NAME, WARD, AGE, DIAGNOSIS, BALANCE) key (ID);
		insert into PATIENT values (1, Adams, oncology, 61, lymphoma, 1250);
		insert into PATIENT values (2, Baker, cardiology, 54, arrhythmia, 830);
		insert into PATIENT values (3, Chen, oncology, 47, melanoma, 2100);
		insert into PATIENT values (4, Davis, oncology, 72, lymphoma, 45);
		insert into PATIENT values (5, Evans, cardiology, 66, stenosis, 990);

		-- The research cohort: clinical facts of oncology patients,
		-- de-identified (no NAME, no BALANCE).
		view COHORT (PATIENT.ID, PATIENT.WARD, PATIENT.AGE, PATIENT.DIAGNOSIS)
		  where PATIENT.WARD = oncology;

		-- Billing: identities and balances, nothing clinical.
		view BILLING (PATIENT.ID, PATIENT.NAME, PATIENT.BALANCE);

		permit COHORT to researcher;
		permit BILLING to clerk;
	`)

	query := `
		retrieve (PATIENT.ID, PATIENT.NAME, PATIENT.AGE, PATIENT.DIAGNOSIS, PATIENT.BALANCE)
		  where PATIENT.AGE >= 50`

	// The researcher's mask is row-restricted (oncology) AND
	// column-restricted (no NAME, no BALANCE).
	res, err := db.Session("researcher").Exec(query)
	if err != nil {
		panic(err)
	}
	fmt.Println("=== researcher asks for patients aged 50+ ===")
	fmt.Print(res.Table)
	for _, p := range res.Permits {
		fmt.Println(" ", p)
	}
	fmt.Println()

	// The clerk's AGE-filtered request is denied outright: BILLING does
	// not expose AGE, so even knowing WHICH patients are 50+ would leak
	// clinical data. Selection attributes must be within the permission
	// (Definition 2 requires the selected attribute to be projected).
	res, err = db.Session("clerk").Exec(query)
	if err != nil {
		panic(err)
	}
	fmt.Printf("=== clerk asks the same: denied=%v, %d rows ===\n", res.Denied, len(res.Table.Rows))
	fmt.Println()

	// Within BILLING, the clerk is served in full.
	res, err = db.Session("clerk").Exec(`
		retrieve (PATIENT.ID, PATIENT.NAME, PATIENT.BALANCE)`)
	if err != nil {
		panic(err)
	}
	fmt.Println("=== clerk asks for names and balances ===")
	fmt.Print(res.Table)
	fmt.Printf("fully authorized: %v\n\n", res.FullyAuthorized)

	res, err = db.Session("intruder").Exec(query)
	if err != nil {
		panic(err)
	}
	fmt.Printf("=== intruder (no permits): denied=%v, %d rows ===\n",
		res.Denied, len(res.Table.Rows))
}
