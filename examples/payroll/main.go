// Payroll: the paper's own EMPLOYEE / PROJECT / ASSIGNMENT domain, at a
// larger scale, exercising joins, the self-join refinement, inferred
// permit statements, and view-checked updates through the public API.
package main

import (
	"fmt"

	"authdb"
)

func main() {
	db := authdb.Open()
	admin := db.Admin()

	admin.MustExecScript(`
		relation EMPLOYEE (NAME, TITLE, SALARY) key (NAME);
		relation PROJECT (NUMBER, SPONSOR, BUDGET) key (NUMBER);
		relation ASSIGNMENT (E_NAME, P_NO) key (E_NAME, P_NO);
	`)

	// A slightly larger company than Figure 1's.
	titles := []string{"engineer", "manager", "technician", "analyst"}
	for i := 0; i < 40; i++ {
		name := fmt.Sprintf("emp%02d", i)
		admin.MustExec(fmt.Sprintf("insert into EMPLOYEE values (%s, %s, %d)",
			name, titles[i%len(titles)], 20000+1000*(i%15)))
	}
	sponsors := []string{"Acme", "Apex", "Summit"}
	for i := 0; i < 12; i++ {
		admin.MustExec(fmt.Sprintf("insert into PROJECT values (p-%02d, %s, %d)",
			i, sponsors[i%len(sponsors)], 100000+50000*(i%10)))
	}
	for i := 0; i < 40; i++ {
		admin.MustExec(fmt.Sprintf("insert into ASSIGNMENT values (emp%02d, p-%02d)", i, i%12))
		admin.MustExec(fmt.Sprintf("insert into ASSIGNMENT values (emp%02d, p-%02d)", i, (i+5)%12))
	}

	admin.MustExecScript(`
		-- Payroll clerks see every salary.
		view SALARIES (EMPLOYEE.NAME, EMPLOYEE.SALARY);

		-- Project coordinators see who works on well-funded projects.
		view BIGPROJ (EMPLOYEE.NAME, EMPLOYEE.TITLE, PROJECT.NUMBER, PROJECT.BUDGET)
		  where EMPLOYEE.NAME = ASSIGNMENT.E_NAME
		  and PROJECT.NUMBER = ASSIGNMENT.P_NO
		  and PROJECT.BUDGET >= 300000;

		-- HR may pair up employees with the same title.
		view PEERS (EMPLOYEE:1.NAME, EMPLOYEE:2.NAME, EMPLOYEE:1.TITLE)
		  where EMPLOYEE:1.TITLE = EMPLOYEE:2.TITLE;

		permit SALARIES to hr;
		permit PEERS to hr;
		permit BIGPROJ to coordinator;
	`)

	// The coordinator asks beyond BIGPROJ: salaries too.
	fmt.Println("== coordinator: names, salaries of engineers on projects over 400k ==")
	res, err := db.Session("coordinator").Exec(`
		retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY)
		  where EMPLOYEE.TITLE = engineer
		  and EMPLOYEE.NAME = ASSIGNMENT.E_NAME
		  and ASSIGNMENT.P_NO = PROJECT.NUMBER
		  and PROJECT.BUDGET >= 400000`)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d rows, salaries masked; inferred:\n", len(res.Table.Rows))
	for _, p := range res.Permits {
		fmt.Println(" ", p)
	}

	// HR's salary-by-peer query is fully granted via the self-join of
	// SALARIES with PEERS (both project the key NAME) — the paper's
	// Example 3 at scale.
	fmt.Println()
	fmt.Println("== hr: salary pairs of same-title employees ==")
	res, err = db.Session("hr").Exec(`
		retrieve (EMPLOYEE:1.NAME, EMPLOYEE:1.SALARY, EMPLOYEE:2.NAME, EMPLOYEE:2.SALARY)
		  where EMPLOYEE:1.TITLE = EMPLOYEE:2.TITLE`)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d rows; fully authorized: %v (no permit statements: %v)\n",
		len(res.Table.Rows), res.FullyAuthorized, len(res.Permits) == 0)

	// Update permissions: the coordinator's BIGPROJ covers ASSIGNMENT
	// entirely, so staffing big projects is allowed; vg-style small
	// projects are not.
	fmt.Println()
	fmt.Println("== coordinator: staffing changes ==")
	coordinator := db.Session("coordinator")
	if _, err := coordinator.Exec(`insert into ASSIGNMENT values (emp01, p-05)`); err != nil {
		fmt.Println("  staffing p-05 rejected:", err)
	} else {
		fmt.Println("  staffed emp01 on p-05 (budget >= 300000): ok")
	}
	if _, err := coordinator.Exec(`insert into ASSIGNMENT values (emp01, p-00)`); err != nil {
		fmt.Println("  staffing p-00 rejected:", err)
	} else {
		fmt.Println("  staffed emp01 on p-00: ok")
	}

	// Aggregates fold the DELIVERED data. PEERS is a *pair* view — it
	// cannot drive a single-occurrence query, so grouping by title that
	// way delivers nothing…
	fmt.Println()
	fmt.Println("== hr: average salary by title (single occurrence: empty) ==")
	res, err = db.Session("hr").Exec(`retrieve (EMPLOYEE.TITLE, avg(EMPLOYEE.SALARY))`)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d groups\n", len(res.Table.Rows))

	// …but phrased as the pair query PEERS grants, the same statistics
	// come straight out (the SALARIES ⋈ PEERS self-join reveals titles
	// and salaries together).
	fmt.Println()
	fmt.Println("== hr: average salary by title (via the pair form) ==")
	res, err = db.Session("hr").Exec(`
		retrieve (EMPLOYEE:1.TITLE, count(EMPLOYEE:1.NAME), avg(EMPLOYEE:1.SALARY))
		  where EMPLOYEE:1.TITLE = EMPLOYEE:2.TITLE`)
	if err != nil {
		panic(err)
	}
	fmt.Print(res.Table)

	// The audit surface: what exactly does the coordinator hold?
	fmt.Println()
	fmt.Println(admin.MustExec(`show rights coordinator`).Text)
}
