// Quickstart: define a relation, a view, a permit — then watch a query
// that exceeds the permission come back masked, with an inferred permit
// statement describing exactly what was delivered.
package main

import (
	"fmt"

	"authdb"
)

func main() {
	db := authdb.Open()
	admin := db.Admin()

	admin.MustExecScript(`
		relation EMPLOYEE (NAME, TITLE, SALARY) key (NAME);
		insert into EMPLOYEE values (Jones, manager, 26000);
		insert into EMPLOYEE values (Smith, technician, 22000);
		insert into EMPLOYEE values (Brown, engineer, 32000);

		-- SAE: the salaries of all employees (but not their titles).
		view SAE (EMPLOYEE.NAME, EMPLOYEE.SALARY);
		permit SAE to Brown;
	`)

	// Brown asks for more than SAE grants: titles included.
	res, err := db.Session("Brown").Exec(`
		retrieve (EMPLOYEE.NAME, EMPLOYEE.TITLE, EMPLOYEE.SALARY)`)
	if err != nil {
		panic(err)
	}

	fmt.Println("Brown's masked answer (TITLE is withheld):")
	fmt.Print(res.Table)
	fmt.Println()
	fmt.Println("Inferred permit statements accompanying the answer:")
	for _, p := range res.Permits {
		fmt.Println(" ", p)
	}

	// The administrator sees everything.
	full := admin.MustExec(`retrieve (EMPLOYEE.NAME, EMPLOYEE.TITLE, EMPLOYEE.SALARY)`)
	fmt.Println()
	fmt.Println("The unmasked answer, for comparison:")
	fmt.Print(full.Table)
}
