package authdb_test

import (
	"fmt"

	"authdb"
)

// Example demonstrates the core flow: a permission granted as a view, a
// query exceeding it, and the masked delivery with an inferred permit
// statement.
func Example() {
	db := authdb.Open()
	admin := db.Admin()
	admin.MustExecScript(`
		relation EMPLOYEE (NAME, TITLE, SALARY) key (NAME);
		insert into EMPLOYEE values (Jones, manager, 26000);
		view SAE (EMPLOYEE.NAME, EMPLOYEE.SALARY);
		permit SAE to Brown;
	`)
	res, _ := db.Session("Brown").Exec(
		`retrieve (EMPLOYEE.NAME, EMPLOYEE.TITLE, EMPLOYEE.SALARY)`)
	fmt.Print(res.Table)
	fmt.Println(res.Permits[0])
	// Output:
	// | NAME  | TITLE | SALARY |
	// | ----- | ----- | ------ |
	// | Jones | -     | 26000  |
	// permit (NAME, SALARY)
}

// ExampleSession_Exec_rowMasking shows row-level restriction: a view
// bounded by a selection masks the rows outside it, and the inferred
// permit names the condition.
func ExampleSession_Exec_rowMasking() {
	db := authdb.Open()
	db.Admin().MustExecScript(`
		relation PROJECT (NUMBER, SPONSOR, BUDGET) key (NUMBER);
		insert into PROJECT values (bq-45, Acme, 300000);
		insert into PROJECT values (sv-72, Apex, 450000);
		view PSA (PROJECT.NUMBER, PROJECT.SPONSOR, PROJECT.BUDGET)
		  where PROJECT.SPONSOR = Acme;
		permit PSA to Brown;
	`)
	res, _ := db.Session("Brown").Exec(`retrieve (PROJECT.NUMBER, PROJECT.SPONSOR)`)
	fmt.Print(res.Table)
	fmt.Println(res.Permits[0])
	// Output:
	// | NUMBER | SPONSOR |
	// | ------ | ------- |
	// | bq-45  | Acme    |
	// permit (NUMBER, SPONSOR) where SPONSOR = Acme
}

// ExampleOptions_extendedMasks shows the §6(3) extension: the view's
// condition guards rows even when the query never requests the
// conditioned attribute.
func ExampleOptions_extendedMasks() {
	opt := authdb.DefaultOptions()
	opt.ExtendedMasks = true
	db := authdb.Open(opt)
	db.Admin().MustExecScript(`
		relation PROJECT (NUMBER, SPONSOR, BUDGET) key (NUMBER);
		insert into PROJECT values (bq-45, Acme, 300000);
		insert into PROJECT values (sv-72, Apex, 450000);
		view PSA (PROJECT.NUMBER, PROJECT.SPONSOR, PROJECT.BUDGET)
		  where PROJECT.SPONSOR = Acme;
		permit PSA to Brown;
	`)
	res, _ := db.Session("Brown").Exec(`retrieve (PROJECT.NUMBER, PROJECT.BUDGET)`)
	fmt.Print(res.Table)
	fmt.Println(res.Permits[0])
	// Output:
	// | NUMBER | BUDGET |
	// | ------ | ------ |
	// | bq-45  | 300000 |
	// permit (NUMBER, BUDGET) where SPONSOR = Acme
}
