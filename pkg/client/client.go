// Package client is the Go client for the authdb network server: it
// dials the wire protocol (internal/wire), authenticates as a
// principal, and executes statements with per-call contexts. The
// server's own end-to-end tests drive it.
//
// A Client owns one TCP connection and serializes calls on it (the
// protocol is strictly request/response). When the connection breaks —
// a server restart, an idle-timeout close, a network blip — the next
// Exec transparently reconnects, and read-only statements are retried
// once. Mutating statements are never auto-retried after the request
// may have reached the server: with replicas replaying the statement
// WAL, a duplicate apply would fan out to the whole fleet, so a
// mutation whose response was lost fails with ErrUnknownOutcome and
// the caller decides (re-check state, or resubmit knowing duplicate
// inserts are ignored by the engine).
package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"time"
	"unicode"

	"authdb/internal/wire"
)

// ErrClosed reports an Exec on a Close()d client.
var ErrClosed = errors.New("client: closed")

// ErrUnknownOutcome reports that a mutating statement's request may
// have reached the server but the connection died before the response:
// the statement may or may not have been applied (and journaled, and
// replicated). The client does not retry — the caller must re-check
// state or knowingly resubmit. Test with errors.Is.
var ErrUnknownOutcome = errors.New("client: outcome unknown (request sent, connection lost before the response)")

// ServerError is a structured statement failure from the server. Branch
// on Code (see internal/wire for the inventory: PARSE, CANCELED,
// BUDGET_EXCEEDED, NOT_AUTHORIZED, SHUTTING_DOWN, EXEC, …), never on
// message text; Retryable reports whether the same request could
// succeed later.
type ServerError struct {
	Code      string
	Message   string
	Line, Col int
	Retryable bool
	// Leader is the server's best hint at the current primary's address;
	// set on READ_ONLY and STALE_PRIMARY refusals. Cluster clients follow
	// it automatically.
	Leader string
}

// Error renders "CODE: message".
func (e *ServerError) Error() string { return e.Code + ": " + e.Message }

func serverError(we *wire.Error) *ServerError {
	return &ServerError{Code: we.Code, Message: we.Message,
		Line: we.Line, Col: we.Col, Retryable: we.Retryable, Leader: we.Leader}
}

// Result is the outcome of one statement.
type Result struct {
	// Text carries acknowledgements and show/meta-command output.
	Text string
	// Rendered is the complete human-readable result, byte-identical to
	// what the REPL prints for the same statement.
	Rendered string
	// Columns and Rows carry the delivered relation of a retrieve
	// (rendered cell values, withheld cells as "-"); nil otherwise.
	Columns []string
	Rows    [][]string
	// Permits are the inferred permit statements of a partial answer.
	Permits []string
	// FullyAuthorized and Denied classify a retrieve's outcome.
	FullyAuthorized bool
	Denied          bool
}

// Option configures a Client.
type Option func(*Client)

// WithUser authenticates as the given (non-administrator) principal.
func WithUser(name string) Option {
	return func(c *Client) { c.user, c.admin = name, false }
}

// WithAdmin authenticates as an administrator named user, presenting
// token (required when the server is configured with one).
func WithAdmin(user, token string) Option {
	return func(c *Client) { c.user, c.admin, c.token = user, true, token }
}

// WithDialTimeout bounds connection establishment and the handshake
// (default 10s).
func WithDialTimeout(d time.Duration) Option {
	return func(c *Client) { c.dialTimeout = d }
}

// WithBackoff bounds the jittered exponential backoff between
// reconnect attempts (defaults 50ms and 2s). The backoff doubles per
// consecutive failure, is capped at max, and resets to min after any
// successful handshake.
func WithBackoff(min, max time.Duration) Option {
	return func(c *Client) { c.backoffMin, c.backoffMax = min, max }
}

// WithDialer overrides how connections are established (tests inject
// failing or partitioned connections). addr is the target the client
// chose from its address list.
func WithDialer(dial func(ctx context.Context, addr string) (net.Conn, error)) Option {
	return func(c *Client) { c.dialFn = dial }
}

// Client is a connection to an authdb server on behalf of one
// principal. Methods are safe for concurrent use; calls are serialized
// on the single underlying connection — open one client per goroutine
// for parallelism, exactly like sessions.
type Client struct {
	addrs       []string
	user        string
	admin       bool
	token       string
	dialTimeout time.Duration
	backoffMin  time.Duration
	backoffMax  time.Duration
	dialFn      func(ctx context.Context, addr string) (net.Conn, error)

	// followHints is set by DialCluster: only cluster-aware clients
	// transparently re-target leader hints. A plain Dial client keeps
	// surfacing READ_ONLY/STALE_PRIMARY refusals (with the hint on the
	// ServerError) so callers pinned to one node see exactly what that
	// node answered.
	followHints bool

	mu      sync.Mutex
	nc      net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	nextID  uint64
	closed  bool
	addrIdx int    // rotation through addrs on failure
	hint    string // pending leader hint: the next connect tries it first
	curAddr string // address of the live connection
	backoff time.Duration
}

// Dial connects to addr and authenticates. The default principal is the
// non-administrator "guest"; set one with WithUser or WithAdmin. A Dial
// client is pinned to its address: it does not follow leader hints (use
// DialCluster for that), so replica write refusals surface as
// *ServerError with the hint in its Leader field.
func Dial(addr string, opts ...Option) (*Client, error) {
	c, err := DialCluster([]string{addr}, opts...)
	if err != nil {
		return nil, err
	}
	c.followHints = false
	return c, nil
}

// DialCluster connects to the first reachable address and
// authenticates. The client remembers the whole list: when a
// connection breaks it rotates through the addresses under jittered
// exponential backoff, and when a node answers READ_ONLY or
// STALE_PRIMARY with a leader hint the client re-targets the hinted
// address — so a mutating workload follows a failover without caller
// involvement. The at-most-once contract is unchanged: a mutation
// whose request may have reached a server still fails with
// ErrUnknownOutcome rather than being retried elsewhere (a leader
// refusal is a deterministic pre-apply answer, so following it is
// safe).
func DialCluster(addrs []string, opts ...Option) (*Client, error) {
	if len(addrs) == 0 {
		return nil, errors.New("client: no addresses")
	}
	c := &Client{
		addrs: append([]string(nil), addrs...), user: "guest",
		dialTimeout: 10 * time.Second,
		backoffMin:  50 * time.Millisecond, backoffMax: 2 * time.Second,
		followHints: true,
	}
	for _, o := range opts {
		o(c)
	}
	if c.dialFn == nil {
		c.dialFn = func(ctx context.Context, addr string) (net.Conn, error) {
			d := net.Dialer{Timeout: c.dialTimeout}
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	var lastErr error
	for range c.addrs {
		if err := c.connect(context.Background()); err != nil {
			lastErr = err
			var se *ServerError
			if errors.As(err, &se) {
				return nil, err // rejected handshake: rotation won't help
			}
			c.addrIdx++
			continue
		}
		return c, nil
	}
	return nil, lastErr
}

// pickAddr chooses the next dial target: a pending leader hint wins,
// else the current slot of the rotation.
func (c *Client) pickAddr() string {
	if c.hint != "" {
		a := c.hint
		c.hint = ""
		return a
	}
	return c.addrs[c.addrIdx%len(c.addrs)]
}

// sleepBackoff waits the current jittered backoff (doubling it, capped)
// and reports false if ctx expired instead.
func (c *Client) sleepBackoff(ctx context.Context) bool {
	d := c.backoff
	if d <= 0 {
		d = c.backoffMin
	}
	c.backoff = 2 * d
	if c.backoff > c.backoffMax {
		c.backoff = c.backoffMax
	}
	// Full jitter around d: uniform in [d/2, 3d/2), so clients that
	// failed together don't redial in lockstep.
	sleep := d/2 + time.Duration(rand.Int63n(int64(d)))
	select {
	case <-ctx.Done():
		return false
	case <-time.After(sleep):
		return true
	}
}

// connect dials and runs the handshake; callers hold c.mu (or own c
// exclusively, as in Dial).
func (c *Client) connect(ctx context.Context) error {
	addr := c.pickAddr()
	nc, err := c.dialFn(ctx, addr)
	if err != nil {
		return fmt.Errorf("client: dial %s: %w", addr, err)
	}
	nc.SetDeadline(time.Now().Add(c.dialTimeout))
	br, bw := bufio.NewReader(nc), bufio.NewWriterSize(nc, 4096)
	if err := wire.WriteMsg(bw, wire.Hello{
		Proto: wire.ProtoVersion, User: c.user, Admin: c.admin, Token: c.token,
	}); err == nil {
		err = bw.Flush()
	}
	if err != nil {
		nc.Close()
		return fmt.Errorf("client: handshake: %w", err)
	}
	var reply wire.HelloReply
	if err := wire.ReadMsg(br, &reply); err != nil {
		nc.Close()
		return fmt.Errorf("client: handshake: %w", err)
	}
	if !reply.OK {
		nc.Close()
		if reply.Error != nil {
			return serverError(reply.Error)
		}
		return errors.New("client: handshake rejected")
	}
	nc.SetDeadline(time.Time{})
	c.nc, c.br, c.bw = nc, br, bw
	c.curAddr = addr
	c.backoff = 0 // reset the reconnect backoff after any successful handshake
	return nil
}

// Addr returns the address of the current (or last) connection.
func (c *Client) Addr() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.curAddr
}

// Exec executes one statement (or the `\stats` meta-command) under ctx:
// the context's deadline rides the request so the server cancels
// server-side too, and cancellation unblocks the network wait. On a
// broken connection Exec reconnects; read-only statements are retried
// once, while mutating statements whose request may already have
// reached the server fail with ErrUnknownOutcome instead of risking a
// duplicate apply. Server-answered failures return a *ServerError and
// are never retried.
func (c *Client) Exec(ctx context.Context, stmt string) (*Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	var lastErr error
	maxAttempts := 2 + len(c.addrs)
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if ctx.Err() != nil {
			if lastErr != nil {
				return nil, lastErr
			}
			return nil, ctx.Err()
		}
		if c.nc == nil {
			if err := c.connect(ctx); err != nil {
				var se *ServerError
				if errors.As(err, &se) {
					return nil, err // rejected handshake: retry won't help
				}
				lastErr = err
				c.addrIdx++ // rotate: the next attempt tries another node
				if !c.sleepBackoff(ctx) {
					return nil, lastErr
				}
				continue
			}
		}
		res, sent, err := c.roundTrip(ctx, stmt)
		if err == nil {
			return res, nil
		}
		var se *ServerError
		if errors.As(err, &se) {
			// A leader refusal is answered before the statement touches
			// the engine, so re-running it on the hinted leader cannot
			// double-apply: a cluster-aware client follows the hint.
			// Anything else is final.
			if c.followHints &&
				(se.Code == wire.CodeReadOnly || se.Code == wire.CodeStalePrimary) &&
				se.Leader != "" && se.Leader != c.curAddr {
				c.hint = se.Leader
				c.nc.Close()
				c.nc = nil
				lastErr = err
				continue
			}
			return nil, err // the server answered; the connection is fine
		}
		// Transport failure: drop the connection.
		c.nc.Close()
		c.nc = nil
		if sent && mutatingStmt(stmt) {
			// The request was (possibly partially) on the wire when the
			// connection died: the server may have executed, journaled,
			// and replicated it. Retrying could apply it twice.
			return nil, fmt.Errorf("%w: %v", ErrUnknownOutcome, err)
		}
		lastErr = err
	}
	return nil, lastErr
}

// mutatingStmt classifies a statement by its leading keyword; anything
// unrecognized counts as mutating (the conservative direction for the
// retry decision — an unknown statement is answered with a parse error
// by the server, so the only cost is a skipped retry).
func mutatingStmt(stmt string) bool {
	stmt = strings.TrimSpace(stmt)
	if strings.HasPrefix(stmt, `\`) {
		return false // meta-commands (\stats) never mutate
	}
	i := 0
	for i < len(stmt) && !unicode.IsSpace(rune(stmt[i])) && stmt[i] != '(' {
		i++
	}
	switch strings.ToLower(stmt[:i]) {
	case "retrieve", "show", "explain", "":
		return false
	}
	return true
}

// roundTrip writes one request and reads its response; callers hold
// c.mu and guarantee c.nc != nil. sent reports whether request bytes
// may have reached the server by the time an error occurred — false
// only for failures before anything was written.
func (c *Client) roundTrip(ctx context.Context, stmt string) (res *Result, sent bool, err error) {
	c.nextID++
	nc := c.nc
	req := wire.Request{ID: c.nextID, Stmt: stmt}
	if dl, ok := ctx.Deadline(); ok {
		nc.SetDeadline(dl)
		if ms := time.Until(dl).Milliseconds(); ms > 0 {
			req.TimeoutMS = ms
		} else {
			req.TimeoutMS = 1
		}
	} else {
		nc.SetDeadline(time.Time{})
	}
	// A context canceled mid-wait unblocks the read by expiring the
	// connection deadline. SetDeadline on a conn the caller has since
	// closed is a harmless error, so the watcher needs no further
	// synchronization.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			nc.SetDeadline(time.Unix(1, 0))
		case <-stop:
		}
	}()

	// From the first write onward the request may be on the wire (large
	// frames flush through the buffered writer mid-WriteMsg), so every
	// failure past this point reports sent=true.
	if err := wire.WriteMsg(c.bw, req); err != nil {
		return nil, true, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, true, err
	}
	var resp wire.Response
	if err := wire.ReadMsg(c.br, &resp); err != nil {
		return nil, true, err
	}
	if resp.ID != req.ID {
		return nil, true, fmt.Errorf("client: response id %d for request %d", resp.ID, req.ID)
	}
	if resp.Error != nil {
		return nil, true, serverError(resp.Error)
	}
	res = &Result{
		Text:            resp.Text,
		Rendered:        resp.Rendered,
		Permits:         resp.Permits,
		FullyAuthorized: resp.FullyAuthorized,
		Denied:          resp.Denied,
	}
	if resp.Table != nil {
		res.Columns = resp.Table.Columns
		res.Rows = resp.Table.Rows
	}
	return res, true, nil
}

// Close closes the connection; further Execs fail with ErrClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.nc == nil {
		return nil
	}
	err := c.nc.Close()
	c.nc = nil
	return err
}
