package client

import (
	"bufio"
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"authdb/internal/wire"
)

// stub is a minimal wire-protocol server that accepts every handshake,
// acknowledges every request, and records the statements it received.
type stub struct {
	ln net.Listener
	mu sync.Mutex
	rx []string
}

func startStub(t *testing.T) *stub {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &stub{ln: ln}
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go s.serve(nc)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return s
}

func (s *stub) serve(nc net.Conn) {
	defer nc.Close()
	br := bufio.NewReader(nc)
	bw := bufio.NewWriter(nc)
	var h wire.Hello
	if wire.ReadMsg(br, &h) != nil {
		return
	}
	if wire.WriteMsg(bw, wire.HelloReply{OK: true, Server: "stub"}) != nil || bw.Flush() != nil {
		return
	}
	for {
		var req wire.Request
		if wire.ReadMsg(br, &req) != nil {
			return
		}
		s.mu.Lock()
		s.rx = append(s.rx, req.Stmt)
		s.mu.Unlock()
		if wire.WriteMsg(bw, wire.Response{ID: req.ID, Text: "ok"}) != nil || bw.Flush() != nil {
			return
		}
	}
}

// count polls until the stub has received at least want copies of stmt
// (or the deadline passes) and returns the final count.
func (s *stub) count(stmt string, want int) int {
	deadline := time.Now().Add(2 * time.Second)
	for {
		s.mu.Lock()
		n := 0
		for _, r := range s.rx {
			if r == stmt {
				n++
			}
		}
		s.mu.Unlock()
		if n >= want || time.Now().After(deadline) {
			return n
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// faultConn injects transport failures around a live connection.
type faultConn struct {
	net.Conn
	failRead  atomic.Bool
	failWrite atomic.Bool
}

func (f *faultConn) Read(p []byte) (int, error) {
	if f.failRead.Load() {
		f.Conn.Close()
		return 0, errors.New("injected read failure")
	}
	return f.Conn.Read(p)
}

func (f *faultConn) Write(p []byte) (int, error) {
	if f.failWrite.Load() {
		f.Conn.Close()
		return 0, errors.New("injected write failure")
	}
	return f.Conn.Write(p)
}

// inject wraps the client's live connection in a faultConn; callers own
// the client exclusively.
func inject(t *testing.T, c *Client) *faultConn {
	t.Helper()
	if c.nc == nil {
		t.Fatal("client has no connection")
	}
	fc := &faultConn{Conn: c.nc}
	c.nc = fc
	c.br = bufio.NewReader(fc)
	c.bw = bufio.NewWriterSize(fc, 4096)
	return fc
}

// TestMutationNotRetriedAfterSend is the duplicate-apply hazard: the
// request reaches the server, the connection dies before the response,
// and the client must surface ErrUnknownOutcome instead of resending
// the mutation.
func TestMutationNotRetriedAfterSend(t *testing.T) {
	s := startStub(t)
	c, err := Dial(s.ln.Addr().String(), WithUser("u"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fc := inject(t, c)
	fc.failRead.Store(true) // the request goes out; the response is lost

	const stmt = `insert into R values (x, y)`
	_, err = c.Exec(context.Background(), stmt)
	if !errors.Is(err, ErrUnknownOutcome) {
		t.Fatalf("lost-response mutation error = %v, want ErrUnknownOutcome", err)
	}
	if n := s.count(stmt, 1); n != 1 {
		t.Fatalf("server received the mutation %d times, want exactly 1 (no auto-retry)", n)
	}

	// The client recovers: the next statement redials and succeeds.
	if _, err := c.Exec(context.Background(), `retrieve (R.A)`); err != nil {
		t.Fatalf("exec after unknown outcome: %v", err)
	}
}

// TestReadRetriedAfterTransportFailure: read-only statements keep the
// transparent retry — a lost response costs one reconnect, not an
// error.
func TestReadRetriedAfterTransportFailure(t *testing.T) {
	s := startStub(t)
	c, err := Dial(s.ln.Addr().String(), WithUser("u"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fc := inject(t, c)
	fc.failRead.Store(true)

	const stmt = `retrieve (R.A)`
	res, err := c.Exec(context.Background(), stmt)
	if err != nil || res.Text != "ok" {
		t.Fatalf("read-only retry = %v, %v; want transparent success", res, err)
	}
	// First attempt reached the stub before the injected read failure,
	// then the retry: two copies is the expected at-least-once shape.
	if n := s.count(stmt, 2); n != 2 {
		t.Fatalf("server received the retrieve %d times, want 2 (original + retry)", n)
	}
}

// TestMutationUnknownOnWriteFailure: a failure during the write phase
// is also "possibly sent" (large frames flush mid-write), so mutations
// stay conservative while reads retry.
func TestMutationUnknownOnWriteFailure(t *testing.T) {
	s := startStub(t)
	c, err := Dial(s.ln.Addr().String(), WithUser("u"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fc := inject(t, c)
	fc.failWrite.Store(true)

	if _, err := c.Exec(context.Background(), `delete from R where A = x`); !errors.Is(err, ErrUnknownOutcome) {
		t.Fatalf("write-failure mutation error = %v, want ErrUnknownOutcome", err)
	}
	if n := s.count(`delete from R where A = x`, 0); n != 0 {
		t.Fatalf("server received %d deletes, want 0", n)
	}

	res, err := c.Exec(context.Background(), `show meta`)
	if err != nil || res.Text != "ok" {
		t.Fatalf("read-only after write failure = %v, %v", res, err)
	}
}

func TestMutatingStmtClassifier(t *testing.T) {
	mutating := []string{
		`insert into R values (x)`,
		`  DELETE from R where A = 1`,
		`relation R (A, B) key (A)`,
		`view V (R.A)`,
		`drop view V`,
		`permit V to u`,
		`revoke V from u`,
		`garbage statement`, // unknown: conservative
	}
	readOnly := []string{
		`retrieve (R.A)`,
		`  Retrieve (R.A) where R.A = 1`,
		`show meta`,
		`explain retrieve (R.A)`,
		`\stats`,
		``,
	}
	for _, s := range mutating {
		if !mutatingStmt(s) {
			t.Errorf("mutatingStmt(%q) = false, want true", s)
		}
	}
	for _, s := range readOnly {
		if mutatingStmt(s) {
			t.Errorf("mutatingStmt(%q) = true, want false", s)
		}
	}
}
