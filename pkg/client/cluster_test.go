// Tests for the cluster-aware half of the client: address rotation,
// leader-hint following, and the jittered reconnect backoff.
package client

import (
	"bufio"
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"authdb/internal/wire"
)

// hintStub is a wire-protocol server that refuses every request with a
// READ_ONLY error naming another address — the shape a replica answers
// mutations with.
type hintStub struct {
	ln     net.Listener
	leader string
	hits   atomic.Int64
}

func startHintStub(t *testing.T, leader string) *hintStub {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &hintStub{ln: ln, leader: leader}
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer nc.Close()
				br, bw := bufio.NewReader(nc), bufio.NewWriter(nc)
				var h wire.Hello
				if wire.ReadMsg(br, &h) != nil {
					return
				}
				if wire.WriteMsg(bw, wire.HelloReply{OK: true, Server: "hintstub"}) != nil || bw.Flush() != nil {
					return
				}
				for {
					var req wire.Request
					if wire.ReadMsg(br, &req) != nil {
						return
					}
					s.hits.Add(1)
					resp := wire.Response{ID: req.ID, Error: &wire.Error{
						Code: wire.CodeReadOnly, Message: "read-only replica",
						Leader: s.leader, Retryable: true,
					}}
					if wire.WriteMsg(bw, resp) != nil || bw.Flush() != nil {
						return
					}
				}
			}()
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return s
}

// TestClientFollowsLeaderHint: a mutation sent to a replica is refused
// with a leader hint, and the client transparently re-targets the
// leader — the refusal happens before the statement touches the
// engine, so the at-most-once contract is intact.
func TestClientFollowsLeaderHint(t *testing.T) {
	leader := startStub(t)
	replicaStub := startHintStub(t, leader.ln.Addr().String())

	c, err := DialCluster([]string{replicaStub.ln.Addr().String()}, WithUser("u"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const stmt = `insert into R values (x)`
	res, err := c.Exec(context.Background(), stmt)
	if err != nil || res.Text != "ok" {
		t.Fatalf("hinted mutation = %v, %v; want success on the leader", res, err)
	}
	if got := c.Addr(); got != leader.ln.Addr().String() {
		t.Fatalf("client connected to %q, want the hinted leader %q", got, leader.ln.Addr())
	}
	if n := leader.count(stmt, 1); n != 1 {
		t.Fatalf("leader received the mutation %d times, want exactly 1", n)
	}
	if replicaStub.hits.Load() != 1 {
		t.Fatalf("replica answered %d requests, want 1", replicaStub.hits.Load())
	}
}

// TestPlainDialStaysPinned: a single-address Dial client does NOT
// follow leader hints — the refusal surfaces, with the hint on the
// error, so a caller pinned to one node sees that node's answer.
func TestPlainDialStaysPinned(t *testing.T) {
	leader := startStub(t)
	replicaStub := startHintStub(t, leader.ln.Addr().String())

	c, err := Dial(replicaStub.ln.Addr().String(), WithUser("u"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, err = c.Exec(context.Background(), `insert into R values (x)`)
	var se *ServerError
	if !errors.As(err, &se) || se.Code != wire.CodeReadOnly {
		t.Fatalf("pinned mutation err = %v, want the READ_ONLY refusal", err)
	}
	if se.Leader != leader.ln.Addr().String() {
		t.Fatalf("refusal Leader = %q, want %q", se.Leader, leader.ln.Addr())
	}
	if n := leader.count(`insert into R values (x)`, 0); n != 0 {
		t.Fatalf("leader received %d requests from a pinned client, want 0", n)
	}
}

// TestDialClusterRotatesPastDeadNodes: the constructor tries each
// address until one accepts.
func TestDialClusterRotatesPastDeadNodes(t *testing.T) {
	live := startStub(t)
	var dials []string
	var mu sync.Mutex
	dialer := func(ctx context.Context, addr string) (net.Conn, error) {
		mu.Lock()
		dials = append(dials, addr)
		mu.Unlock()
		if addr == "dead.invalid:1" {
			return nil, errors.New("injected dial failure")
		}
		var d net.Dialer
		return d.DialContext(ctx, "tcp", addr)
	}
	c, err := DialCluster([]string{"dead.invalid:1", live.ln.Addr().String()},
		WithUser("u"), WithDialer(dialer))
	if err != nil {
		t.Fatalf("DialCluster: %v", err)
	}
	defer c.Close()
	if got := c.Addr(); got != live.ln.Addr().String() {
		t.Fatalf("connected to %q, want the live node", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(dials) != 2 || dials[0] != "dead.invalid:1" {
		t.Fatalf("dial sequence %v, want the dead node first, then the live one", dials)
	}
}

// TestReconnectBackoffDoublesCapsAndResets pins the backoff shape:
// doubling per consecutive failure, capped at the maximum, reset after
// a successful handshake, and abandoned when the context dies.
func TestReconnectBackoffDoublesCapsAndResets(t *testing.T) {
	c := &Client{backoffMin: time.Millisecond, backoffMax: 4 * time.Millisecond}
	for i, want := range []time.Duration{2, 4, 4} {
		if !c.sleepBackoff(context.Background()) {
			t.Fatalf("sleepBackoff %d aborted", i)
		}
		if c.backoff != want*time.Millisecond {
			t.Fatalf("after sleep %d backoff = %v, want %v", i, c.backoff, want*time.Millisecond)
		}
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	c.backoff = time.Hour
	if c.sleepBackoff(canceled) {
		t.Fatal("sleepBackoff ignored the dead context")
	}

	// A successful handshake resets the backoff.
	s := startStub(t)
	c2, err := Dial(s.ln.Addr().String(), WithUser("u"), WithBackoff(time.Millisecond, 4*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	c2.backoff = 4 * time.Millisecond // as if reconnects had been failing
	fc := inject(t, c2)
	fc.failRead.Store(true) // force one transport failure, then a clean redial
	if _, err := c2.Exec(context.Background(), `retrieve (R.A)`); err != nil {
		t.Fatalf("read across reconnect: %v", err)
	}
	if c2.backoff != 0 {
		t.Fatalf("backoff after successful reconnect = %v, want reset", c2.backoff)
	}
}

// TestReconnectSurvivesInjectedDialFailures is the fault-injecting
// dialer test: a broken connection plus a failing redial must end in a
// successful retry (for reads) once the dialer recovers, with the
// backoff machinery in between.
func TestReconnectSurvivesInjectedDialFailures(t *testing.T) {
	s := startStub(t)
	var dialCount atomic.Int64
	dialer := func(ctx context.Context, addr string) (net.Conn, error) {
		if dialCount.Add(1) == 2 {
			return nil, errors.New("injected dial failure")
		}
		var d net.Dialer
		return d.DialContext(ctx, "tcp", addr)
	}
	c, err := Dial(s.ln.Addr().String(), WithUser("u"),
		WithDialer(dialer), WithBackoff(time.Millisecond, 4*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fc := inject(t, c)
	fc.failRead.Store(true) // kill the live connection on first use

	res, err := c.Exec(context.Background(), `retrieve (R.A)`)
	if err != nil || res.Text != "ok" {
		t.Fatalf("read across dial failures = %v, %v; want success", res, err)
	}
	if n := dialCount.Load(); n != 3 {
		t.Fatalf("dialer called %d times, want 3 (initial, injected failure, recovery)", n)
	}
}
